"""Tests for the DynamoDB read path and read-capacity control."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.cloud import DynamoDBConfig, SimCloudWatch, SimDynamoDBTable
from repro.control import DynamoDBReadActuator
from repro.core.errors import ConfigurationError
from repro.simulation import SimClock
from repro.workload import ConstantRate, StepRate


@pytest.fixture
def clock():
    clock = SimClock(tick_seconds=1)
    clock.advance()
    return clock


def table(read_units=100, **config_kwargs):
    return SimDynamoDBTable(
        write_units=100, read_units=read_units, config=DynamoDBConfig(**config_kwargs)
    )


class TestReadPath:
    def test_accepts_within_provision(self, clock):
        t = table(read_units=100)
        result = t.read(80, clock)
        assert result.accepted_units == 80
        assert result.throttled_units == 0

    def test_throttles_above_provision(self, clock):
        t = table(read_units=100)
        result = t.read(150, clock)
        assert result.accepted_units == 100
        assert result.throttled_units == 50

    def test_read_burst_bucket_independent_of_write_bucket(self, clock):
        t = table(read_units=100, burst_seconds=300)
        for _ in range(5):
            t.read(0, clock)
            t.write(100, clock)  # writes fully used: write bucket stays empty
            clock.advance()
        assert t.read_burst_balance == 500
        assert t.burst_balance == 0
        result = t.read(400, clock)
        assert result.throttled_units == 0

    def test_rejects_negative(self, clock):
        with pytest.raises(ConfigurationError):
            table().read(-1, clock)

    def test_read_metrics_emitted(self, clock):
        t = table(read_units=100)
        cw = SimCloudWatch()
        t.read(150, clock)
        t.emit_metrics(cw, clock)
        dims = {"TableName": t.name}
        assert cw.get_series("AWS/DynamoDB", "ConsumedReadCapacityUnits", dims)[1] == [100.0]
        assert cw.get_series("AWS/DynamoDB", "ReadThrottleEvents", dims)[1] == [50.0]
        util = cw.get_series("AWS/DynamoDB", "ReadUtilization", dims)[1][0]
        assert util == pytest.approx(100.0)


class TestReadCapacityUpdates:
    def test_update_applies_after_delay(self):
        t = table(read_units=100, update_delay_seconds=30)
        t.update_read_capacity(200, now=0)
        assert t.read_capacity(29) == 100
        assert t.read_capacity(30) == 200

    def test_read_and_write_updates_independent(self):
        t = table(read_units=100, update_delay_seconds=30)
        t.update_write_capacity(500, now=0)
        # A write update in flight does not block a read update.
        assert t.update_read_capacity(200, now=0) == 200

    def test_read_decrease_cooldown(self):
        t = table(read_units=100, update_delay_seconds=0, decrease_cooldown_seconds=3600)
        assert t.update_read_capacity(50, now=0) == 50
        assert t.update_read_capacity(30, now=60) == 50  # blocked
        assert t.update_read_capacity(30, now=3700) == 30

    def test_actuator_reports_inflight_target(self):
        t = table(read_units=100, update_delay_seconds=30)
        actuator = DynamoDBReadActuator(t)
        assert actuator.apply(250.0, now=0) == 250.0
        assert actuator.get(10) == 250.0
        assert t.read_capacity(10) == 100


class TestManagedReadWorkload:
    def test_read_controller_scales_read_capacity(self):
        manager = (
            FlowBuilder("reads", seed=13)
            .ingestion(shards=1)
            .analytics(vms=1)
            .storage(write_units=200)
            .workload(ConstantRate(400))
            .reads(StepRate(base=30, level=220, at=1800), read_units=100,
                   style="adaptive", reference=60.0)
            .build()
        )
        result = manager.run(3600)
        assert result.read_loop is not None
        rcu = result.trace(
            "AWS/DynamoDB", "ProvisionedReadCapacityUnits",
            dimensions=result.layer_dimensions[LayerKind.STORAGE],
        )
        # Scaled down toward the light read load first, up after the step.
        assert rcu.values[-1] > rcu.slice(600, 1800).minimum()
        util = result.trace(
            "AWS/DynamoDB", "ReadUtilization",
            dimensions=result.layer_dimensions[LayerKind.STORAGE],
        )
        assert util.slice(3000, 3600).mean() < 90.0

    def test_read_workload_without_control_is_static(self):
        manager = (
            FlowBuilder("reads", seed=13)
            .workload(ConstantRate(400))
            .reads(ConstantRate(50), read_units=120)
            .build()
        )
        result = manager.run(600)
        rcu = result.trace(
            "AWS/DynamoDB", "ProvisionedReadCapacityUnits",
            dimensions=result.layer_dimensions[LayerKind.STORAGE],
        )
        assert set(rcu.values) == {120.0}

    def test_read_control_requires_read_workload(self):
        from repro.core.config import LayerControlConfig, make_controller
        from repro.core.manager import FlowElasticityManager

        with pytest.raises(ConfigurationError):
            FlowElasticityManager(
                workload=ConstantRate(100),
                read_control=LayerControlConfig(
                    controller=make_controller("adaptive", LayerKind.STORAGE)
                ),
            )

    def test_read_capacity_is_metered(self):
        manager = (
            FlowBuilder("reads", seed=13)
            .workload(ConstantRate(100))
            .reads(ConstantRate(50), read_units=200)
            .build()
        )
        result = manager.run(3600)
        assert result.cost_by_layer["storage_reads"] > 0

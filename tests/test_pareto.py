"""Unit and property tests for Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.errors import OptimizationError
from repro.optimization import dominates, hypervolume, pareto_filter
from repro.optimization.pareto import hypervolume_2d, hypervolume_monte_carlo


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1, 1], [2, 2])
        assert dominates([1, 2], [2, 2])

    def test_no_dominance_on_tradeoff(self):
        assert not dominates([1, 3], [2, 2])
        assert not dominates([2, 2], [1, 3])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_shape_mismatch(self):
        with pytest.raises(OptimizationError):
            dominates([1, 2], [1, 2, 3])


class TestParetoFilter:
    def test_filters_dominated(self):
        F = [[1, 4], [2, 2], [4, 1], [3, 3], [5, 5]]
        assert pareto_filter(F) == [0, 1, 2]

    def test_all_nondominated(self):
        F = [[1, 3], [2, 2], [3, 1]]
        assert pareto_filter(F) == [0, 1, 2]

    def test_duplicates_kept(self):
        F = [[1, 1], [1, 1]]
        assert pareto_filter(F) == [0, 1]

    def test_requires_2d(self):
        with pytest.raises(OptimizationError):
            pareto_filter([1, 2, 3])


class TestHypervolume2D:
    def test_single_point(self):
        assert hypervolume_2d([[1, 1]], reference=[3, 3]) == pytest.approx(4.0)

    def test_staircase(self):
        front = [[1, 3], [2, 2], [3, 1]]
        # Rectangles: (4-1)*(4-3) + (4-2)*(3-2) + (4-3)*(2-1) = 3+2+1.
        assert hypervolume_2d(front, reference=[4, 4]) == pytest.approx(6.0)

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d([[5, 5], [1, 1]], reference=[3, 3]) == pytest.approx(4.0)

    def test_empty_contribution(self):
        assert hypervolume_2d([[5, 5]], reference=[3, 3]) == 0.0

    def test_dominated_points_do_not_change_volume(self):
        base = hypervolume_2d([[1, 3], [3, 1]], reference=[4, 4])
        extra = hypervolume_2d([[1, 3], [3, 1], [3.5, 3.5]], reference=[4, 4])
        assert base == pytest.approx(extra)


class TestHypervolumeMonteCarlo:
    def test_approximates_exact_2d(self):
        front = [[1, 3], [2, 2], [3, 1]]
        rng = np.random.default_rng(0)
        estimate = hypervolume_monte_carlo(front, [4, 4], rng, samples=100_000)
        assert estimate == pytest.approx(6.0, rel=0.05)

    def test_3d_cube(self):
        rng = np.random.default_rng(1)
        estimate = hypervolume_monte_carlo([[0, 0, 0]], [1, 1, 1], rng, samples=1000)
        assert estimate == pytest.approx(1.0)

    def test_dispatcher_picks_exact_for_2d(self):
        assert hypervolume([[1, 1]], [2, 2]) == pytest.approx(1.0)

    def test_dispatcher_handles_3d(self):
        value = hypervolume([[0, 0, 0]], [1, 1, 1])
        assert value == pytest.approx(1.0, rel=0.05)


class TestProperties:
    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=10), st.floats(min_value=0, max_value=10)),
        min_size=1, max_size=20,
    ))
    def test_filtered_front_is_mutually_nondominated(self, points):
        F = [list(p) for p in points]
        front = [F[i] for i in pareto_filter(F)]
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)

    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=9), st.floats(min_value=0, max_value=9)),
        min_size=1, max_size=15,
    ))
    def test_hypervolume_monotone_in_points(self, points):
        F = [list(p) for p in points]
        ref = [10.0, 10.0]
        hv_all = hypervolume_2d(F, ref)
        hv_one = hypervolume_2d(F[:1], ref)
        assert hv_all >= hv_one - 1e-9

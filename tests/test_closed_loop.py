"""Closed-loop validation on an analytic plant.

The cloud simulators are complex; these tests validate the controllers
on a transparent plant — ``utilisation = 100 * demand / capacity`` —
where the theory's predictions are exact: integral control converges to
the reference, the Eq. 7 bounds keep the loop inside the stability
region, and a gain beyond ``2/|b|`` genuinely diverges.
"""

import pytest

from repro.control import (
    AdaptiveGainConfig,
    AdaptiveGainController,
    FixedGainConfig,
    FixedGainController,
    estimate_process_gain,
    max_stable_gain,
)


class LinearUtilizationPlant:
    """``y = 100 * demand / u``: the utilisation plant all three layers
    approximate around an operating point."""

    def __init__(self, demand: float, capacity: float) -> None:
        self.demand = demand
        self.capacity = capacity

    def measure(self) -> float:
        return 100.0 * self.demand / self.capacity

    def apply(self, capacity: float) -> None:
        self.capacity = max(0.5, capacity)

    def local_sensitivity(self) -> float:
        """dy/du at the current point: -100*demand/u^2 (negative)."""
        return -100.0 * self.demand / self.capacity ** 2


def run_loop(controller, plant, steps=200):
    history = []
    for k in range(steps):
        y = plant.measure()
        u_next = controller.compute(plant.capacity, y, 60 * k)
        plant.apply(u_next)
        history.append((y, plant.capacity))
    return history


class TestConvergence:
    def test_adaptive_converges_to_reference(self):
        plant = LinearUtilizationPlant(demand=30.0, capacity=20.0)
        controller = AdaptiveGainController(AdaptiveGainConfig(
            reference=60.0, gamma=0.0005, l_min=0.01, l_max=0.2,
        ))
        history = run_loop(controller, plant)
        final_y = history[-1][0]
        assert final_y == pytest.approx(60.0, abs=1.0)
        # The converged capacity is the analytic answer 100*30/60 = 50.
        assert history[-1][1] == pytest.approx(50.0, rel=0.05)

    def test_adaptive_tracks_a_demand_step(self):
        plant = LinearUtilizationPlant(demand=30.0, capacity=50.0)
        controller = AdaptiveGainController(AdaptiveGainConfig(
            reference=60.0, gamma=0.0005, l_min=0.01, l_max=0.2,
        ))
        run_loop(controller, plant, steps=100)
        plant.demand = 90.0  # 3x the load
        history = run_loop(controller, plant, steps=200)
        assert history[-1][0] == pytest.approx(60.0, abs=2.0)
        assert history[-1][1] == pytest.approx(150.0, rel=0.05)

    def test_fixed_gain_converges_when_stable(self):
        plant = LinearUtilizationPlant(demand=30.0, capacity=20.0)
        # |b| ~ 100*30/50^2 = 1.2 near the target; 2/1.2 ~ 1.67 max.
        controller = FixedGainController(FixedGainConfig(reference=60.0, gain=0.3))
        history = run_loop(controller, plant)
        assert history[-1][0] == pytest.approx(60.0, abs=1.0)


class TestStabilityBound:
    def test_gain_beyond_bound_oscillates(self):
        plant = LinearUtilizationPlant(demand=30.0, capacity=40.0)  # y=75: off target
        # Near the target point u=50: b = -1.2, stability needs l < 1.67.
        unstable = FixedGainController(FixedGainConfig(reference=60.0, gain=3.0))
        history = run_loop(unstable, plant, steps=60)
        errors = [abs(y - 60.0) for y, _u in history[5:]]
        # Error does not decay: the tail is no better than the head.
        assert sum(errors[-10:]) > 0.5 * sum(errors[:10])

    def test_gain_inside_bound_decays(self):
        plant = LinearUtilizationPlant(demand=30.0, capacity=40.0)
        bound = max_stable_gain(plant.local_sensitivity())
        stable = FixedGainController(FixedGainConfig(reference=60.0, gain=0.4 * bound))
        history = run_loop(stable, plant, steps=60)
        errors = [abs(y - 60.0) for y, _u in history]
        assert errors[-1] < 0.1 * max(errors[0], 1.0)

    def test_estimated_sensitivity_matches_analytic(self):
        plant = LinearUtilizationPlant(demand=30.0, capacity=40.0)  # off target
        controller = AdaptiveGainController(AdaptiveGainConfig(
            reference=60.0, gamma=0.001, l_min=0.05, l_max=0.3,
        ))
        history = run_loop(controller, plant, steps=40)
        u_values = [u for _y, u in history]
        y_values = [y for y, _u in history]
        estimated = estimate_process_gain(u_values[:-1], y_values[1:])
        analytic = plant.local_sensitivity()
        assert estimated == pytest.approx(analytic, rel=0.5)
        assert estimated < 0


class TestGainAdaptationDynamics:
    def test_gain_rises_during_persistent_error_and_decays_after(self):
        plant = LinearUtilizationPlant(demand=30.0, capacity=200.0)  # util 15
        controller = AdaptiveGainController(AdaptiveGainConfig(
            reference=60.0, gamma=0.002, l_min=0.01, l_max=1.0, use_memory=False,
        ))
        # Strongly under-utilized: persistent negative error, so Eq. 7
        # pins the gain at l_min while capacity shrinks.
        run_loop(controller, plant, steps=50)
        assert controller.gain == pytest.approx(0.01)
        # Now overload: persistent positive error drives the gain up.
        plant.demand = 300.0
        run_loop(controller, plant, steps=5)
        assert controller.gain > 0.05

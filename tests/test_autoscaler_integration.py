"""Integration: the AWS-style AutoScaler driving a managed flow.

Shows the provider baseline working end to end against the same
simulated services Flower's controllers manage — alarms on the flow's
own CloudWatch metrics trigger scaling policies on the real actuators.
"""

from repro import FlowBuilder, LayerKind
from repro.cloud import MetricAlarm
from repro.cloud.autoscaling import AutoScaler, ScalingPolicy
from repro.control import KinesisShardActuator
from repro.workload import StepRate


class TestAutoScalerOnManagedFlow:
    def test_alarm_driven_scaling_handles_a_step(self):
        manager = (
            FlowBuilder("provider-style", seed=7)
            .ingestion(shards=1)
            .analytics(vms=2)
            .storage(write_units=300)
            .workload(StepRate(base=500, level=2400, at=900))
            .build()  # no Flower controllers: the AutoScaler acts instead
        )
        scaler = AutoScaler(
            cloudwatch=manager.cloudwatch,
            actuator=KinesisShardActuator(manager.stream),
        )
        dims = {"StreamName": manager.stream.name}
        scaler.attach(
            MetricAlarm("hot", "AWS/Kinesis", "WriteUtilization", threshold=80.0,
                        comparison=">", period=60, evaluation_periods=2, dimensions=dims),
            ScalingPolicy("scale-out", adjustment=1, cooldown=180),
        )
        scaler.attach(
            MetricAlarm("cold", "AWS/Kinesis", "WriteUtilization", threshold=25.0,
                        comparison="<", period=60, evaluation_periods=5, dimensions=dims),
            ScalingPolicy("scale-in", adjustment=-1, cooldown=600),
        )
        manager.engine.every(60, scaler.evaluate, name="autoscaler")
        result = manager.run(3600)

        assert len(scaler.activities) >= 2
        shards = result.capacity_trace(LayerKind.INGESTION)
        assert shards.maximum() >= 3  # scaled out after the step
        util_tail = result.utilization_trace(LayerKind.INGESTION).slice(3000, 3600)
        assert util_tail.mean() < 85.0

    def test_fixed_step_scaling_is_slow_for_big_shocks(self):
        """The paper's criticism, demonstrated: one shard per alarm
        period takes many minutes to absorb a large step."""
        manager = (
            FlowBuilder("slow-rules", seed=7)
            .ingestion(shards=1)
            .workload(StepRate(base=500, level=4500, at=600))
            .build()
        )
        scaler = AutoScaler(
            cloudwatch=manager.cloudwatch,
            actuator=KinesisShardActuator(manager.stream),
        )
        dims = {"StreamName": manager.stream.name}
        scaler.attach(
            MetricAlarm("hot", "AWS/Kinesis", "WriteUtilization", threshold=80.0,
                        comparison=">", period=60, evaluation_periods=1, dimensions=dims),
            ScalingPolicy("scale-out", adjustment=1, cooldown=120),
        )
        manager.engine.every(60, scaler.evaluate, name="autoscaler")
        result = manager.run(3600)
        throttled = sum(result.throttle_trace(LayerKind.INGESTION).values)
        # +1 shard every 2 minutes needs ~8 minutes to cover a 4-shard
        # jump: substantial throttling in the meantime.
        assert throttled > 500_000

"""Tests for partition-key skew (hot shards) in the Kinesis simulator."""

import pytest

from repro.cloud import KinesisConfig, SimKinesisStream
from repro.core.errors import ConfigurationError
from repro.simulation import SimClock


@pytest.fixture
def clock():
    clock = SimClock(tick_seconds=1)
    clock.advance()
    return clock


class TestHotShardShare:
    def test_uniform_keys(self):
        config = KinesisConfig(hash_key_skew=0.0)
        assert config.hot_shard_share(4) == pytest.approx(0.25)

    def test_skewed_keys(self):
        config = KinesisConfig(hash_key_skew=0.5)
        # Hot shard gets its fair quarter plus half of all traffic.
        assert config.hot_shard_share(4) == pytest.approx(0.625)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KinesisConfig(hash_key_skew=1.0)
        with pytest.raises(ConfigurationError):
            KinesisConfig(hash_key_skew=-0.1)


class TestSkewedCapacity:
    def test_uniform_keys_scale_linearly(self):
        stream = SimKinesisStream(shards=8, config=KinesisConfig(hash_key_skew=0.0))
        assert stream.write_capacity_records(0) == 8000

    def test_skew_caps_usable_capacity(self):
        # With 30% of keys on one shard, the hot shard saturates at
        # 1000/0.3875 ~ 2580 rec/s aggregate, regardless of 8 shards.
        stream = SimKinesisStream(shards=8, config=KinesisConfig(hash_key_skew=0.3))
        assert stream.write_capacity_records(0) == int(1000 / (0.3 + 0.7 / 8))

    def test_adding_shards_helps_sublinearly(self):
        config = KinesisConfig(hash_key_skew=0.3)
        small = SimKinesisStream(shards=2, config=config).write_capacity_records(0)
        big = SimKinesisStream(shards=8, config=config).write_capacity_records(0)
        assert big > small
        assert big < 4 * small  # far below the 4x shard ratio

    def test_skew_asymptote_is_per_shard_limit_over_skew(self):
        config = KinesisConfig(hash_key_skew=0.5, max_shards=512)
        huge = SimKinesisStream(shards=512, config=config)
        # Even 512 shards cannot beat the single hottest key group.
        assert huge.write_capacity_records(0) <= int(1000 / 0.5)

    def test_throttling_reflects_hot_shard(self, clock):
        stream = SimKinesisStream(shards=4, config=KinesisConfig(hash_key_skew=0.5))
        # Aggregate 4000 rec/s but the hot shard caps usable at 1600.
        result = stream.put_records(3000, 0, clock)
        assert result.accepted_records == 1600
        assert result.throttled_records == 1400

    def test_single_shard_unaffected_by_skew(self):
        skewed = SimKinesisStream(shards=1, config=KinesisConfig(hash_key_skew=0.9))
        assert skewed.write_capacity_records(0) == 1000

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.duration == 7200
        assert args.style == "adaptive"

    def test_unknown_style_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--style", "pid"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.out is None
        assert args.profile is False


class TestCommands:
    def test_demo_prints_dashboard_and_cost(self, capsys):
        assert main(["demo", "--duration", "1800", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "ingestion.records" in out
        assert "total cost: $" in out

    def test_demo_trace_writes_jsonl(self, capsys, tmp_path):
        from repro.observability import read_jsonl

        path = tmp_path / "flow.jsonl"
        assert main(["demo", "--duration", "1800", "--seed", "1",
                     "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"-> {path}" in out
        data = read_jsonl(path)
        assert data["decisions"], "trace should contain control decisions"
        loops = {d.loop for d in data["decisions"] if d.acted}
        assert {"ingestion", "storage"} <= loops

    def test_trace_summarises_and_exports(self, capsys, tmp_path):
        from repro.observability import read_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["trace", "--duration", "1800", "--seed", "1",
                     "--profile", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder:" in out
        assert "tick profile:" in out
        assert read_jsonl(path)["profile"]["ticks"] == 1800

    def test_fig2_prints_panels_and_model(self, capsys):
        assert main(["fig2", "--duration", "3600", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ingestion Layer (Kinesis)" in out
        assert "correlation: r = +" in out
        assert "CPU ~" in out

    def test_pareto_prints_front(self, capsys):
        assert main(["pareto", "--budget", "1.0", "--generations", "30"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal plans" in out
        assert "Shards" in out
        assert "picked (balanced)" in out

    def test_pareto_pick_strategy_flag(self, capsys):
        assert main(["pareto", "--budget", "1.0", "--generations", "60",
                     "--pick", "cheapest"]) == 0
        assert "picked (cheapest)" in capsys.readouterr().out

    def test_pareto_reports_infeasible_gracefully(self, capsys):
        # A hopeless budget: even the minimum allocation costs more.
        assert main(["pareto", "--budget", "0.0001", "--generations", "5"]) == 1
        assert "no feasible plan" in capsys.readouterr().out

    def test_shootout_compares_all_styles(self, capsys):
        assert main(["shootout", "--duration", "1800"]) == 0
        out = capsys.readouterr().out
        for style in ("adaptive", "fixed", "quasi", "rule"):
            assert style in out
        assert "best on SLO violations" in out

    def test_shootout_jobs_output_identical_to_serial(self, capsys):
        assert main(["shootout", "--duration", "1200"]) == 0
        serial = capsys.readouterr().out
        assert main(["shootout", "--duration", "1200", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

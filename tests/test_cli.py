"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.duration == 7200
        assert args.style == "adaptive"

    def test_unknown_style_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--style", "pid"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.out is None
        assert args.profile is False


class TestCommands:
    def test_demo_prints_dashboard_and_cost(self, capsys):
        assert main(["demo", "--duration", "1800", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "ingestion.records" in out
        assert "total cost: $" in out

    def test_demo_trace_writes_jsonl(self, capsys, tmp_path):
        from repro.observability import read_jsonl

        path = tmp_path / "flow.jsonl"
        assert main(["demo", "--duration", "1800", "--seed", "1",
                     "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"-> {path}" in out
        data = read_jsonl(path)
        assert data["decisions"], "trace should contain control decisions"
        loops = {d.loop for d in data["decisions"] if d.acted}
        assert {"ingestion", "storage"} <= loops

    def test_trace_summarises_and_exports(self, capsys, tmp_path):
        from repro.observability import read_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["trace", "--duration", "1800", "--seed", "1",
                     "--profile", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder:" in out
        assert "tick profile:" in out
        assert read_jsonl(path)["profile"]["ticks"] == 1800

    def test_trace_filters_events(self, capsys):
        assert main(["trace", "--duration", "1200", "--seed", "1",
                     "--layer", "storage", "--kind", "capacity"]) == 0
        out = capsys.readouterr().out
        assert "events matched" in out
        # kind filtering is prefix-aware: capacity matches
        # capacity.update and capacity.applied, nothing else.
        assert "capacity.update" in out
        assert "throttle" not in out

    def test_trace_causal_prints_chain(self, capsys):
        assert main(["trace", "--duration", "1200", "--seed", "1",
                     "--causal", "ingestion@60"]) == 0
        out = capsys.readouterr().out
        assert "ingestion@60" in out

    def test_trace_causal_unknown_id_exits(self, capsys):
        with pytest.raises(SystemExit, match="unknown trace id"):
            main(["trace", "--duration", "1200", "--seed", "1",
                  "--causal", "no-such@999"])

    def test_trace_chrome_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "chrome.json"
        assert main(["trace", "--duration", "1200", "--seed", "1",
                     "--chrome", str(path)]) == 0
        assert "open in Perfetto" in capsys.readouterr().out
        assert json.loads(path.read_text())["traceEvents"]

    def test_scorecard_writes_cards(self, capsys, tmp_path):
        assert main(["scorecard", "--scenario", "steady",
                     "--duration", "900", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scorecard steady" in out
        assert (tmp_path / "SCORECARD_steady_smoke.json").exists()

    def test_scorecard_check_refuses_out_into_baseline_dir(self, tmp_path):
        # Writing fresh cards into the baseline dir while gating would
        # overwrite the baselines and compare each card against itself
        # — the gate would always pass. Refused up front.
        with pytest.raises(SystemExit, match="baseline"):
            main(["scorecard", "--scenario", "steady", "--duration", "900",
                  "--check", "--out", str(tmp_path),
                  "--baseline-dir", str(tmp_path)])

    def test_scorecard_check_does_not_touch_baselines(self, capsys, tmp_path):
        # The gate reads the committed baseline before --out writes; a
        # drifting run must leave the baseline file byte-identical.
        baselines = tmp_path / "baselines"
        fresh = tmp_path / "artifacts"
        assert main(["scorecard", "--scenario", "steady", "--duration", "900",
                     "--seed", "3", "--out", str(baselines)]) == 0
        capsys.readouterr()
        baseline_file = baselines / "SCORECARD_steady_smoke.json"
        committed = baseline_file.read_text()
        assert main(["scorecard", "--scenario", "steady", "--duration", "900",
                     "--seed", "4", "--check", "--out", str(fresh),
                     "--baseline-dir", str(baselines)]) == 1
        assert "DRIFT" in capsys.readouterr().out
        assert baseline_file.read_text() == committed
        assert (fresh / "SCORECARD_steady_smoke.json").exists()

    def test_scorecard_check_fails_without_baseline(self, capsys, tmp_path):
        assert main(["scorecard", "--scenario", "steady",
                     "--duration", "900", "--check",
                     "--baseline-dir", str(tmp_path / "empty")]) == 1
        out = capsys.readouterr().out
        assert "MISSING BASELINE" in out
        assert "scorecard gate FAILED" in out

    def test_scorecard_check_reports_drift(self, capsys, tmp_path):
        # Baseline from a different seed: every deterministic field
        # drifts, the gate fails and names the fields.
        assert main(["scorecard", "--scenario", "steady", "--duration", "900",
                     "--seed", "3", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["scorecard", "--scenario", "steady", "--duration", "900",
                     "--seed", "4", "--check",
                     "--baseline-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "regenerate baselines" in out

    def test_scenario_list_prints_catalog(self, capsys):
        from repro.scenarios import CATALOG_NAMES

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in CATALOG_NAMES:
            assert name in out

    def test_scenario_show_emits_loadable_json(self, capsys):
        from repro.scenarios import Scenario, catalog_scenario

        assert main(["scenario", "show", "seasonal-drift"]) == 0
        out = capsys.readouterr().out
        assert Scenario.from_json(out) == catalog_scenario("seasonal-drift")

    def test_scenario_show_requires_a_name(self):
        with pytest.raises(SystemExit, match="NAME is required"):
            main(["scenario", "show"])

    def test_scenario_run_unknown_name_exits(self):
        with pytest.raises(SystemExit, match="unknown catalog scenario"):
            main(["scenario", "run", "no-such-scenario"])

    def test_scenario_run_writes_matrix_identically_at_any_jobs(
            self, capsys, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["scenario", "run", "step-surge-worker-crash",
                     "--out", str(serial)]) == 0
        assert main(["scenario", "run", "step-surge-worker-crash",
                     "--jobs", "2", "--out", str(parallel)]) == 0
        out = capsys.readouterr().out
        assert "step-surge-worker-crash" in out
        assert serial.read_text() == parallel.read_text()

    def test_scenario_check_refuses_out_into_baseline(self, tmp_path):
        # Mirrors the scorecard gate: writing the fresh matrix over the
        # baseline while gating would compare it against itself.
        baseline = tmp_path / "SCORECARD_catalog.json"
        with pytest.raises(SystemExit, match="overwrite the committed baseline"):
            main(["scenario", "run", "--check",
                  "--out", str(baseline), "--baseline", str(baseline)])

    def test_scenario_check_fails_without_baseline(self, capsys, tmp_path):
        assert main(["scenario", "run", "step-surge-worker-crash", "--check",
                     "--baseline", str(tmp_path / "missing.json")]) == 1
        out = capsys.readouterr().out
        assert "MISSING BASELINE" in out
        assert "catalog gate FAILED" in out

    def test_scenario_check_reports_drift_and_keeps_baseline(
            self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "artifacts" / "matrix.json"
        assert main(["scenario", "run", "step-surge-worker-crash",
                     "--out", str(baseline)]) == 0
        capsys.readouterr()
        # Corrupt one deterministic field; the gate must name it, fail,
        # and leave the committed baseline untouched while the fresh
        # matrix lands in artifacts/.
        data = json.loads(baseline.read_text())
        data["scenarios"]["step-surge-worker-crash"]["card"]["total_cost"] *= 2
        baseline.write_text(json.dumps(data))
        committed = baseline.read_text()
        assert main(["scenario", "run", "step-surge-worker-crash", "--check",
                     "--out", str(fresh), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "total_cost" in out
        assert "regenerate the baseline" in out
        assert baseline.read_text() == committed
        assert fresh.exists()

    def test_scenario_check_passes_against_committed_baseline(self, capsys):
        # The real CI gate at test scale: one scenario against the
        # committed matrix must match byte-for-byte.
        assert main(["scenario", "run", "step-surge-worker-crash",
                     "--check"]) == 0
        assert "gate: ok" in capsys.readouterr().out

    def test_scenario_fast_refuses_exact_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(["scenario", "run", "step-surge-worker-crash",
                     "--out", str(baseline)]) == 0
        with pytest.raises(SystemExit, match="catalog gate"):
            main(["scenario", "run", "step-surge-worker-crash", "--fast",
                  "--check", "--baseline", str(baseline)])

    def test_fig2_prints_panels_and_model(self, capsys):
        assert main(["fig2", "--duration", "3600", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ingestion Layer (Kinesis)" in out
        assert "correlation: r = +" in out
        assert "CPU ~" in out

    def test_pareto_prints_front(self, capsys):
        assert main(["pareto", "--budget", "1.0", "--generations", "30"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal plans" in out
        assert "Shards" in out
        assert "picked (balanced)" in out

    def test_pareto_pick_strategy_flag(self, capsys):
        assert main(["pareto", "--budget", "1.0", "--generations", "60",
                     "--pick", "cheapest"]) == 0
        assert "picked (cheapest)" in capsys.readouterr().out

    def test_pareto_reports_infeasible_gracefully(self, capsys):
        # A hopeless budget: even the minimum allocation costs more.
        assert main(["pareto", "--budget", "0.0001", "--generations", "5"]) == 1
        assert "no feasible plan" in capsys.readouterr().out

    def test_shootout_compares_all_styles(self, capsys):
        assert main(["shootout", "--duration", "1800"]) == 0
        out = capsys.readouterr().out
        for style in ("adaptive", "fixed", "quasi", "rule"):
            assert style in out
        assert "best on SLO violations" in out

    def test_shootout_jobs_output_identical_to_serial(self, capsys):
        assert main(["shootout", "--duration", "1200"]) == 0
        serial = capsys.readouterr().out
        assert main(["shootout", "--duration", "1200", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

"""Unit tests for the optimization problem abstraction."""

import numpy as np
import pytest

from repro.core.errors import OptimizationError
from repro.optimization import FunctionalProblem


def simple_problem(integer=False):
    return FunctionalProblem(
        objectives=[lambda x: float(x[0] ** 2), lambda x: float((x[0] - 2) ** 2)],
        lower=[-5.0],
        upper=[5.0],
        constraints=[lambda x: float(x[0]) - 4.0],  # x <= 4
        integer=integer,
    )


class TestFunctionalProblem:
    def test_evaluate_returns_objectives_and_violations(self):
        problem = simple_problem()
        f, g = problem.evaluate(np.array([3.0]))
        assert f.tolist() == [9.0, 1.0]
        assert g.tolist() == [0.0]  # 3 <= 4: feasible

    def test_violation_is_positive_part(self):
        problem = simple_problem()
        _f, g = problem.evaluate(np.array([4.5]))
        assert g.tolist() == [0.5]

    def test_total_violation(self):
        problem = simple_problem()
        assert problem.total_violation(np.array([5.0])) == pytest.approx(1.0)
        assert problem.total_violation(np.array([0.0])) == 0.0

    def test_repair_clamps_to_bounds(self):
        problem = simple_problem()
        assert problem.repair(np.array([9.0])).tolist() == [5.0]
        assert problem.repair(np.array([-9.0])).tolist() == [-5.0]

    def test_repair_rounds_integers(self):
        problem = simple_problem(integer=True)
        assert problem.repair(np.array([2.6])).tolist() == [3.0]

    def test_no_constraints_gives_empty_violations(self):
        problem = FunctionalProblem(
            objectives=[lambda x: float(x[0])], lower=[0.0], upper=[1.0]
        )
        _f, g = problem.evaluate(np.array([0.5]))
        assert g.size == 0

    def test_validation(self):
        with pytest.raises(OptimizationError):
            FunctionalProblem(objectives=[], lower=[0.0], upper=[1.0])
        with pytest.raises(OptimizationError):
            FunctionalProblem(
                objectives=[lambda x: 0.0], lower=[1.0], upper=[0.0]
            )
        with pytest.raises(OptimizationError):
            FunctionalProblem(
                objectives=[lambda x: 0.0], lower=[0.0, 0.0], upper=[1.0]
            )


class TestEvaluateBatchFallback:
    """The default ``evaluate_batch`` must agree row-for-row with ``evaluate``."""

    def test_fallback_matches_rowwise_evaluate(self):
        problem = simple_problem()
        X = np.array([[3.0], [4.5], [-2.0], [0.0]])
        F, V = problem.evaluate_batch(X)
        assert F.shape == (4, 2)
        assert V.shape == (4, 1)
        for i, x in enumerate(X):
            f, g = problem.evaluate(x)
            assert np.array_equal(F[i], f)
            assert np.array_equal(V[i], g)

    def test_unconstrained_batch_has_zero_width_violations(self):
        problem = FunctionalProblem(
            objectives=[lambda x: float(x[0])], lower=[0.0], upper=[1.0]
        )
        F, V = problem.evaluate_batch(np.array([[0.1], [0.9]]))
        assert F.shape == (2, 1)
        assert V.shape == (2, 0)
        assert V.sum(axis=1).tolist() == [0.0, 0.0]

    def test_empty_batch(self):
        F, V = simple_problem().evaluate_batch(np.empty((0, 1)))
        assert F.shape == (0, 2)
        assert V.size == 0

    def test_rejects_wrong_width(self):
        with pytest.raises(OptimizationError):
            simple_problem().evaluate_batch(np.zeros((3, 2)))
        with pytest.raises(OptimizationError):
            simple_problem().evaluate_batch(np.zeros(3))

    def test_batch_repair_broadcasts_over_rows(self):
        problem = simple_problem(integer=True)
        repaired = problem.repair(np.array([[9.0], [-9.0], [2.6]]))
        assert repaired.tolist() == [[5.0], [-5.0], [3.0]]

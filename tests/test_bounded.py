"""Tests for share-bound enforcement on controllers (paper Sec. 2)."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.control import BoundedActuator, CallbackActuator
from repro.core.errors import ControlError
from repro.workload import ConstantRate, StepRate


class _Store:
    def __init__(self, value=5.0):
        self.value = value

    def actuator(self):
        return CallbackActuator(
            getter=lambda now: self.value,
            setter=lambda v, now: setattr(self, "value", v),
            minimum=1,
            maximum=1000,
        )


class TestBoundedActuator:
    def test_passes_through_within_bounds(self):
        store = _Store()
        bounded = BoundedActuator(store.actuator(), cap=10)
        assert bounded.apply(7.0, 0) == 7.0
        assert bounded.clamped_requests == 0

    def test_caps_above(self):
        store = _Store()
        bounded = BoundedActuator(store.actuator(), cap=10)
        assert bounded.apply(50.0, 0) == 10.0
        assert store.value == 10.0
        assert bounded.clamped_requests == 1

    def test_floors_below(self):
        store = _Store()
        bounded = BoundedActuator(store.actuator(), cap=10, floor=3)
        assert bounded.apply(1.0, 0) == 3.0

    def test_get_delegates(self):
        store = _Store(value=4.0)
        assert BoundedActuator(store.actuator(), cap=10).get(0) == 4.0

    def test_validation(self):
        with pytest.raises(ControlError):
            BoundedActuator(_Store().actuator(), cap=1, floor=5)


class TestShareBoundsInManager:
    def test_controller_never_exceeds_share_bound(self):
        """Overload demands ~5 shards, but the share bound caps at 2."""
        manager = (
            FlowBuilder("bounded", seed=3)
            .ingestion(shards=1)
            .workload(StepRate(base=500, level=4500, at=600))
            .control(LayerKind.INGESTION, style="adaptive")
            .share_bounds({LayerKind.INGESTION: 2})
            .build()
        )
        result = manager.run(3600)
        shards = result.capacity_trace(LayerKind.INGESTION)
        assert shards.maximum() <= 2.0
        # The bound really bit: the loop's actuator recorded clamps.
        actuator = result.loops[LayerKind.INGESTION].actuator
        assert isinstance(actuator, BoundedActuator)
        assert actuator.clamped_requests > 0

    def test_share_bounds_accepts_resource_share(self):
        from repro.optimization.share_analyzer import ResourceShare

        share = ResourceShare(
            shares=((LayerKind.INGESTION, 3), (LayerKind.ANALYTICS, 2),
                    (LayerKind.STORAGE, 500)),
            hourly_cost=1.0,
        )
        manager = (
            FlowBuilder("bounded", seed=3)
            .workload(ConstantRate(500))
            .control_all(style="adaptive")
            .share_bounds(share)
            .build()
        )
        assert manager.share_bounds == {
            LayerKind.INGESTION: 3,
            LayerKind.ANALYTICS: 2,
            LayerKind.STORAGE: 500,
        }

    def test_invalid_bound_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            (
                FlowBuilder()
                .workload(ConstantRate(100))
                .share_bounds({LayerKind.INGESTION: 0})
                .build()
            )

    def test_unbounded_layers_unaffected(self):
        manager = (
            FlowBuilder("bounded", seed=3)
            .workload(ConstantRate(500))
            .control_all(style="adaptive")
            .share_bounds({LayerKind.INGESTION: 4})
            .build()
        )
        assert isinstance(manager.loops[LayerKind.INGESTION].actuator, BoundedActuator)
        assert not isinstance(manager.loops[LayerKind.ANALYTICS].actuator, BoundedActuator)

"""Unit tests for seeded RNG derivation."""

from repro.simulation import derive_rng, spawn_streams


class TestDeriveRng:
    def test_same_seed_and_label_reproduce(self):
        a = derive_rng(42, "workload").normal(size=10)
        b = derive_rng(42, "workload").normal(size=10)
        assert (a == b).all()

    def test_different_labels_are_independent(self):
        a = derive_rng(42, "workload").normal(size=10)
        b = derive_rng(42, "cpu-noise").normal(size=10)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").normal(size=10)
        b = derive_rng(2, "x").normal(size=10)
        assert not (a == b).all()

    def test_spawn_streams_covers_all_labels(self):
        streams = spawn_streams(7, ["a", "b", "c"])
        assert set(streams) == {"a", "b", "c"}
        assert streams["a"].normal() != streams["b"].normal()

"""Scalar-vs-vectorized NSGA-II equivalence suite.

The optimizer draws every generation's random numbers up front (the
pinned call pattern in ``nsga2.py``'s module docstring) and then applies
the operators either as numpy matrix expressions or as per-individual
Python loops over the same draws. These tests pin the contract: **same
seed, same Pareto front, bit for bit**, on a continuous known-optimum
problem, a constrained problem, and the paper's Fig. 4 share problem.
"""

import numpy as np
import pytest

from repro.core.flow import LayerKind, clickstream_flow_spec
from repro.optimization import (
    NSGA2,
    NSGA2Config,
    FunctionalProblem,
    ResourceShareAnalyzer,
    ShareConstraint,
)
from repro.optimization.nsga2 import Individual, constrained_dominates, dominance_matrix


def schaffer():
    """SCH: f1=x^2, f2=(x-2)^2; the Pareto set is x in [0, 2]."""
    return FunctionalProblem(
        objectives=[lambda x: float(x[0] ** 2), lambda x: float((x[0] - 2) ** 2)],
        lower=[-1000.0],
        upper=[1000.0],
    )


def constrained():
    """Maximize x and y under x + y <= 10."""
    return FunctionalProblem(
        objectives=[lambda x: -float(x[0]), lambda x: -float(x[1])],
        lower=[0.0, 0.0],
        upper=[20.0, 20.0],
        constraints=[lambda x: float(x[0] + x[1]) - 10.0],
    )


def run_both(problem_factory, config, seed):
    vec = NSGA2(problem_factory(), config, seed=seed, vectorized=True).run()
    ref = NSGA2(problem_factory(), config, seed=seed, vectorized=False).run()
    return vec, ref


class TestScalarVectorizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_schaffer_front_identical(self, seed):
        config = NSGA2Config(population_size=24, generations=40)
        vec, ref = run_both(schaffer, config, seed)
        assert np.array_equal(vec.pareto_f, ref.pareto_f)
        assert np.array_equal(vec.pareto_x, ref.pareto_x)

    def test_schaffer_converges_to_known_optimum_both_paths(self):
        config = NSGA2Config(population_size=60, generations=100)
        vec, ref = run_both(schaffer, config, seed=1)
        for result in (vec, ref):
            xs = result.pareto_x.ravel()
            assert len(xs) >= 20
            assert np.all(xs >= -0.05)
            assert np.all(xs <= 2.05)

    def test_constrained_front_identical(self):
        config = NSGA2Config(population_size=20, generations=40)
        vec, ref = run_both(constrained, config, seed=2)
        assert np.array_equal(vec.pareto_f, ref.pareto_f)
        assert np.array_equal(vec.pareto_x, ref.pareto_x)

    def test_whole_final_population_identical(self):
        config = NSGA2Config(population_size=20, generations=15)
        vec, ref = run_both(constrained, config, seed=9)
        assert len(vec.population) == len(ref.population)
        for a, b in zip(vec.population, ref.population):
            assert np.array_equal(a.x, b.x)
            assert np.array_equal(a.f, b.f)
            assert a.violation == b.violation
            assert a.rank == b.rank
            assert a.crowding == b.crowding

    def test_evaluation_counts_match(self):
        config = NSGA2Config(population_size=16, generations=12)
        vec, ref = run_both(schaffer, config, seed=4)
        assert vec.evaluations == ref.evaluations == 16 + 16 * 12


class TestFig4Equivalence:
    def paper_analyzer(self):
        constraints = [
            ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION),
            ShareConstraint.at_most(2, LayerKind.ANALYTICS, LayerKind.INGESTION),
            ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE),
        ]
        return ResourceShareAnalyzer(clickstream_flow_spec(), constraints=constraints)

    def test_share_analysis_identical_across_paths(self):
        analyzer = self.paper_analyzer()
        kwargs = dict(budget_per_hour=1.5, population_size=40, generations=40, seed=0)
        vec = analyzer.analyze(**kwargs, vectorized=True)
        ref = analyzer.analyze(**kwargs, vectorized=False)
        assert [s.shares for s in vec.solutions] == [s.shares for s in ref.solutions]
        assert [s.hourly_cost for s in vec.solutions] == [s.hourly_cost for s in ref.solutions]
        assert vec.evaluations == ref.evaluations

    def test_share_problem_batch_matches_rowwise(self):
        from repro.cloud.pricing import PriceBook
        from repro.optimization.share_analyzer import _ShareProblem

        analyzer = self.paper_analyzer()
        problem = _ShareProblem(analyzer.flow, PriceBook(), 1.5, analyzer.constraints)
        rng = np.random.default_rng(0)
        X = problem.repair(rng.uniform(problem.lower, problem.upper, size=(50, 3)))
        F_batch, V_batch = problem.evaluate_batch(X)
        for i, x in enumerate(X):
            f, v = problem.evaluate(x)
            assert np.array_equal(F_batch[i], f)
            assert np.array_equal(V_batch[i], v)


class TestTournamentDraws:
    def test_entrants_are_always_distinct(self):
        """Deb's binary tournament: an individual never competes with itself."""
        optimizer = NSGA2(schaffer(), NSGA2Config(population_size=100, generations=1), seed=0)
        for _ in range(50):
            draws = optimizer._draw_generation(100)
            assert np.all(draws.entrant_a != draws.entrant_b)
            assert np.all((draws.entrant_b >= 0) & (draws.entrant_b < 100))

    def test_draw_pattern_is_pinned(self):
        """The documented RNG call order: replaying it by hand must match."""
        config = NSGA2Config(population_size=8, generations=1)
        optimizer = NSGA2(schaffer(), config, seed=123)
        optimizer._initial_samples()  # consume the initialization draws
        draws = optimizer._draw_generation(8)

        rng = np.random.default_rng(123)
        for _d in range(1):  # n_var columns of the stratified start
            rng.uniform(0, 1, 8)
            rng.shuffle(np.empty(8))
        a = rng.integers(0, 8, size=8)
        b = rng.integers(0, 7, size=8)
        b = b + (b >= a)
        assert np.array_equal(draws.entrant_a, a)
        assert np.array_equal(draws.entrant_b, b)
        assert np.array_equal(draws.tie, rng.random(8))
        assert np.array_equal(draws.sbx_gate, rng.random(4))
        assert np.array_equal(draws.sbx_apply, rng.random((4, 1)))
        assert np.array_equal(draws.sbx_u, rng.random((4, 1)))
        assert np.array_equal(draws.mut_apply, rng.random((8, 1)))
        assert np.array_equal(draws.mut_u, rng.random((8, 1)))


class TestDominanceMatrix:
    def test_agrees_with_pairwise_constrained_dominance(self):
        rng = np.random.default_rng(3)
        F = rng.normal(size=(30, 3)).round(1)  # rounding forces some ties
        V = np.where(rng.random(30) < 0.4, rng.random(30), 0.0)
        population = [
            Individual(x=np.zeros(1), f=F[i], violation=float(V[i])) for i in range(30)
        ]
        D = dominance_matrix(F, V)
        for i in range(30):
            for j in range(30):
                expected = i != j and constrained_dominates(population[i], population[j])
                assert D[i, j] == expected, (i, j)

"""Unit tests for price books and cost meters."""

import pytest

from repro.cloud.pricing import CostMeter, PriceBook, ResourcePrice
from repro.core.errors import ConfigurationError


class TestResourcePrice:
    def test_capacity_cost(self):
        price = ResourcePrice("x", hourly=0.10)
        assert price.capacity_cost(units=2, seconds=3600) == pytest.approx(0.20)
        assert price.capacity_cost(units=4, seconds=900) == pytest.approx(0.10)

    def test_usage_cost(self):
        price = ResourcePrice("x", hourly=0.0, per_use=0.5)
        assert price.usage_cost(10) == pytest.approx(5.0)

    def test_rejects_negative_prices(self):
        with pytest.raises(ConfigurationError):
            ResourcePrice("x", hourly=-1.0)

    def test_rejects_negative_amounts(self):
        price = ResourcePrice("x", hourly=1.0)
        with pytest.raises(ConfigurationError):
            price.capacity_cost(-1, 10)
        with pytest.raises(ConfigurationError):
            price.usage_cost(-1)


class TestPriceBook:
    def test_default_book_has_paper_resources(self):
        book = PriceBook()
        for resource in ("kinesis.shard", "ec2.m4.large", "dynamodb.wcu", "dynamodb.rcu"):
            assert book.price(resource).hourly > 0

    def test_hourly_rate_scales_with_units(self):
        book = PriceBook()
        assert book.hourly_rate("kinesis.shard", 10) == pytest.approx(0.15)

    def test_unknown_resource_raises_with_known_list(self):
        with pytest.raises(ConfigurationError, match="kinesis.shard"):
            PriceBook().price("mainframe.mips")

    def test_set_price_overrides(self):
        book = PriceBook()
        book.set_price(ResourcePrice("kinesis.shard", hourly=1.0))
        assert book.price("kinesis.shard").hourly == 1.0

    def test_custom_book_is_isolated(self):
        custom = PriceBook({"a": ResourcePrice("a", hourly=1.0)})
        assert custom.resources() == ["a"]
        # The default book is unaffected by custom books.
        assert "kinesis.shard" in PriceBook().resources()


class TestCostMeter:
    def test_accrues_unit_hours(self):
        meter = CostMeter(PriceBook(), "ec2.m4.large")
        for _ in range(3600):
            meter.accrue(units=2, seconds=1)
        assert meter.unit_hours == pytest.approx(2.0)
        assert meter.total_cost == pytest.approx(0.20)

    def test_usage_dimension_adds_cost(self):
        book = PriceBook({"r": ResourcePrice("r", hourly=0.0, per_use=0.001)})
        meter = CostMeter(book, "r")
        meter.record_usage(1000)
        assert meter.total_cost == pytest.approx(1.0)

    def test_rejects_negative_accrual(self):
        meter = CostMeter(PriceBook(), "kinesis.shard")
        with pytest.raises(ConfigurationError):
            meter.accrue(-1, 1)
        with pytest.raises(ConfigurationError):
            meter.record_usage(-1)

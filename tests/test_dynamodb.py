"""Unit tests for the simulated DynamoDB table."""

import pytest

from repro.cloud import DynamoDBConfig, SimCloudWatch, SimDynamoDBTable
from repro.core.errors import CapacityError, ConfigurationError
from repro.simulation import SimClock


@pytest.fixture
def clock():
    clock = SimClock(tick_seconds=1)
    clock.advance()
    return clock


def drained_table(write_units=100, **config_kwargs):
    """A table whose burst bucket starts empty (it fills from unused capacity)."""
    return SimDynamoDBTable(write_units=write_units, config=DynamoDBConfig(**config_kwargs))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DynamoDBConfig(min_write_units=0)
        with pytest.raises(ConfigurationError):
            DynamoDBConfig(min_write_units=10, max_write_units=5)
        with pytest.raises(ConfigurationError):
            DynamoDBConfig(burst_seconds=-1)

    def test_initial_capacity_respects_limits(self):
        with pytest.raises(CapacityError):
            SimDynamoDBTable(write_units=50000)


class TestWrites:
    def test_accepts_within_provision(self, clock):
        table = drained_table(write_units=100)
        result = table.write(80, clock)
        assert result.accepted_units == 80
        assert result.throttled_units == 0

    def test_throttles_above_provision_with_empty_bucket(self, clock):
        table = drained_table(write_units=100)
        result = table.write(150, clock)
        assert result.accepted_units == 100
        assert result.throttled_units == 50

    def test_burst_bucket_absorbs_spikes(self, clock):
        table = drained_table(write_units=100, burst_seconds=300)
        # Ten idle ticks bank 10 * 100 unused units.
        for _ in range(10):
            table.write(0, clock)
            clock.advance()
        assert table.burst_balance == 1000
        result = table.write(600, clock)
        assert result.accepted_units == 600
        assert result.throttled_units == 0
        assert table.burst_balance == 500

    def test_burst_bucket_capped(self, clock):
        table = drained_table(write_units=100, burst_seconds=5)
        for _ in range(100):
            table.write(0, clock)
            clock.advance()
        assert table.burst_balance == 500  # 5 s * 100 units

    def test_rejects_negative_units(self, clock):
        with pytest.raises(ConfigurationError):
            drained_table().write(-1, clock)


class TestCapacityUpdates:
    def test_update_applies_after_delay(self):
        table = drained_table(write_units=100, update_delay_seconds=30)
        table.update_write_capacity(200, now=0)
        assert table.write_capacity(29) == 100
        assert table.updating(29)
        assert table.write_capacity(30) == 200

    def test_update_while_in_flight_ignored(self):
        table = drained_table(write_units=100, update_delay_seconds=30)
        table.update_write_capacity(200, now=0)
        assert table.update_write_capacity(300, now=10) == 200

    def test_decrease_cooldown_blocks_second_decrease(self):
        table = drained_table(write_units=100, update_delay_seconds=0,
                              decrease_cooldown_seconds=3600)
        assert table.update_write_capacity(80, now=0) == 80
        # Second decrease within the cooldown is refused.
        assert table.update_write_capacity(60, now=100) == 80
        # Increases are always allowed.
        assert table.update_write_capacity(120, now=200) == 120
        # After the cooldown the decrease goes through.
        assert table.update_write_capacity(60, now=3601) == 60

    def test_target_clamped_to_limits(self):
        table = SimDynamoDBTable(write_units=100, config=DynamoDBConfig(max_write_units=500))
        assert table.update_write_capacity(10_000, now=0) == 500
        assert table.update_write_capacity(0, now=100) == 1

    def test_same_target_is_noop(self):
        table = drained_table(write_units=100)
        assert table.update_write_capacity(100, now=0) == 100
        assert not table.updating(0)


class TestMetrics:
    def test_emits_and_resets(self, clock):
        table = drained_table(write_units=100)
        cw = SimCloudWatch()
        table.write(150, clock)
        table.emit_metrics(cw, clock)
        dims = {"TableName": table.name}
        assert cw.get_series("AWS/DynamoDB", "ConsumedWriteCapacityUnits", dims)[1] == [100.0]
        assert cw.get_series("AWS/DynamoDB", "WriteThrottleEvents", dims)[1] == [50.0]
        util = cw.get_series("AWS/DynamoDB", "WriteUtilization", dims)[1][0]
        assert util == pytest.approx(100.0)
        clock.advance()
        table.emit_metrics(cw, clock)
        assert cw.get_series("AWS/DynamoDB", "WriteThrottleEvents", dims)[1][-1] == 0.0

"""Unit tests for the simulation engine and periodic tasks."""

import pytest

from repro.core.errors import SimulationError
from repro.simulation import PeriodicTask, SimClock, SimulationEngine


class _Recorder:
    """A component that records the ticks it saw."""

    def __init__(self):
        self.times = []

    def on_tick(self, clock):
        self.times.append(clock.now)


class TestPeriodicTask:
    def test_due_on_interval(self):
        task = PeriodicTask(interval=60, callback=lambda t: None)
        assert task.due(60)
        assert task.due(120)
        assert not task.due(61)

    def test_phase_offsets_first_firing(self):
        task = PeriodicTask(interval=60, callback=lambda t: None, phase=30)
        assert not task.due(0)
        assert not task.due(60)
        assert task.due(30)
        assert task.due(90)

    def test_not_due_before_phase(self):
        task = PeriodicTask(interval=10, callback=lambda t: None, phase=50)
        assert not task.due(40)
        assert task.due(50)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            PeriodicTask(interval=0, callback=lambda t: None)
        with pytest.raises(SimulationError):
            PeriodicTask(interval=10, callback=lambda t: None, phase=-1)


class TestSimulationEngine:
    def test_components_run_every_tick(self):
        engine = SimulationEngine()
        recorder = _Recorder()
        engine.add_component(recorder)
        engine.run(5)
        assert recorder.times == [1, 2, 3, 4, 5]

    def test_components_run_in_registration_order(self):
        engine = SimulationEngine()
        order = []

        class Named:
            def __init__(self, name):
                self.name = name

            def on_tick(self, clock):
                order.append(self.name)

        engine.add_component(Named("first"))
        engine.add_component(Named("second"))
        engine.run(1)
        assert order == ["first", "second"]

    def test_periodic_tasks_fire_on_schedule(self):
        engine = SimulationEngine(clock=SimClock(tick_seconds=10))
        fired = []
        engine.every(30, fired.append, name="thirty")
        engine.run(100)
        assert fired == [30, 60, 90]

    def test_task_interval_must_align_with_tick(self):
        engine = SimulationEngine(clock=SimClock(tick_seconds=7))
        with pytest.raises(SimulationError):
            engine.every(10, lambda t: None)

    def test_task_phase_must_align_with_tick(self):
        # Regression: a task with phase=30 on a 60 s tick satisfies
        # (now - phase) % interval == 0 at t=30, 90, ... — times the
        # engine never visits — so it used to register fine and then
        # silently never fire (a staggered controller was simply dead).
        engine = SimulationEngine(clock=SimClock(tick_seconds=60))
        with pytest.raises(SimulationError, match="phase"):
            engine.every(60, lambda t: None, phase=30)

    def test_aligned_phase_staggers_firings(self):
        engine = SimulationEngine(clock=SimClock(tick_seconds=30))
        fired = []
        engine.every(60, fired.append, phase=30, name="staggered")
        engine.run(240)
        assert fired == [30, 90, 150, 210]

    def test_tick_hooks_run_after_components(self):
        engine = SimulationEngine()
        events = []
        recorder = _Recorder()
        engine.add_component(recorder)
        engine.on_each_tick(lambda t: events.append(("hook", t, len(recorder.times))))
        engine.run(2)
        # At each hook firing, the component has already seen that tick.
        assert events == [("hook", 1, 1), ("hook", 2, 2)]

    def test_stop_ends_run_early(self):
        engine = SimulationEngine()
        engine.every(3, lambda t: engine.stop(), name="stopper")
        end = engine.run(100)
        assert end == 3

    def test_run_resumes_from_current_time(self):
        engine = SimulationEngine()
        engine.run(10)
        end = engine.run(5)
        assert end == 15

    def test_rejects_bad_durations(self):
        engine = SimulationEngine(clock=SimClock(tick_seconds=10))
        with pytest.raises(SimulationError):
            engine.run(0)
        with pytest.raises(SimulationError):
            engine.run(15)  # not a multiple of the tick

    def test_tasks_see_completed_tick_time(self):
        engine = SimulationEngine()
        recorder = _Recorder()
        engine.add_component(recorder)
        seen = {}
        engine.every(2, lambda t: seen.setdefault(t, list(recorder.times)), name="check")
        engine.run(4)
        # When the t=2 task fired, ticks 1 and 2 had already run.
        assert seen[2] == [1, 2]

"""Unit tests for the simulation clock."""

import pytest

from repro.core.errors import SimulationError
from repro.simulation import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        clock = SimClock()
        assert clock.now == 0
        assert clock.ticks == 0

    def test_advance_moves_by_tick_length(self):
        clock = SimClock(tick_seconds=5)
        assert clock.advance() == 5
        assert clock.advance() == 10
        assert clock.ticks == 2

    def test_custom_start(self):
        clock = SimClock(tick_seconds=2, start=100)
        assert clock.now == 100
        clock.advance()
        assert clock.now == 102

    def test_minutes_and_hours(self):
        clock = SimClock(tick_seconds=60)
        for _ in range(90):
            clock.advance()
        assert clock.minutes == 90.0
        assert clock.hours == 1.5

    def test_rejects_nonpositive_tick(self):
        with pytest.raises(SimulationError):
            SimClock(tick_seconds=0)
        with pytest.raises(SimulationError):
            SimClock(tick_seconds=-1)

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            SimClock(start=-5)

    def test_repr_mentions_time(self):
        assert "now=0s" in repr(SimClock())

"""Unit tests for the simulated Storm cluster."""

import numpy as np
import pytest

from repro.cloud import (
    EC2Config,
    KinesisConfig,
    SimCloudWatch,
    SimEC2Fleet,
    SimKinesisStream,
    SimStormCluster,
    StormConfig,
)
from repro.core.errors import ConfigurationError
from repro.simulation import SimClock


def make_cluster(vms=1, config=None, noise=0.0):
    fleet = SimEC2Fleet(config=EC2Config(boot_seconds=0), initial_instances=vms)
    cfg = config or StormConfig(cpu_noise_std=noise)
    if config is None and noise == 0.0:
        cfg = StormConfig(cpu_noise_std=0.0)
    return SimStormCluster(fleet, cfg, rng=np.random.default_rng(0))


def feed(cluster, stream, records, clock, distinct=0):
    stream.put_records(records, 0, clock)
    return cluster.pull_and_process(stream, distinct, clock)


@pytest.fixture
def clock():
    clock = SimClock(tick_seconds=1)
    clock.advance()
    return clock


class TestStormConfig:
    def test_cpu_slope_calibrated_for_eq2(self):
        # With the default config, slope per record/min on a one-VM
        # cluster is ~0.0002 — Eq. 2's coefficient.
        config = StormConfig()
        assert config.cpu_slope_per_record_per_second / 60.0 == pytest.approx(2e-4, rel=0.01)
        assert config.cpu_idle_percent == pytest.approx(4.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StormConfig(records_per_vm_per_second=0)
        with pytest.raises(ConfigurationError):
            StormConfig(cpu_idle_percent=100.0)
        with pytest.raises(ConfigurationError):
            StormConfig(poll_factor=0.5)
        with pytest.raises(ConfigurationError):
            StormConfig(cpu_noise_std=-1)


class TestProcessing:
    def test_processes_within_capacity(self, clock):
        cluster = make_cluster(vms=1)
        stream = SimKinesisStream(shards=4)
        feed(cluster, stream, 3000, clock)
        assert cluster.pending_records == 0
        assert cluster._tick_processed == 3000

    def test_backlog_when_overloaded(self, clock):
        cluster = make_cluster(vms=1)  # 8000 rec/s capacity
        stream = SimKinesisStream(shards=12)
        feed(cluster, stream, 12000, clock)
        assert cluster.pending_records == 4000

    def test_backlog_drains_when_load_drops(self, clock):
        cluster = make_cluster(vms=1)
        stream = SimKinesisStream(shards=12)
        feed(cluster, stream, 12000, clock)
        clock.advance()
        feed(cluster, stream, 0, clock)
        assert cluster.pending_records == 0

    def test_poll_factor_limits_pull(self, clock):
        config = StormConfig(poll_factor=1.0, cpu_noise_std=0.0)
        cluster = make_cluster(vms=1, config=config)
        stream = SimKinesisStream(shards=12)
        stream.put_records(12000, 0, clock)
        cluster.pull_and_process(stream, 0, clock)
        # Pulled only its capacity; the rest stays in the stream.
        assert stream.backlog_records == 4000
        assert cluster.pending_records == 0


class TestCpuModel:
    def test_cpu_is_affine_in_rate(self, clock):
        cluster = make_cluster(vms=1)
        stream = SimKinesisStream(shards=8)
        feed(cluster, stream, 4000, clock)
        expected = 4.8 + (100 - 4.8) / 8000 * 4000
        assert cluster._tick_cpu == pytest.approx(expected)

    def test_cpu_saturates_at_100_when_backlogged(self, clock):
        cluster = make_cluster(vms=1)
        stream = SimKinesisStream(shards=20)
        feed(cluster, stream, 20000, clock)
        assert cluster._tick_cpu == 100.0

    def test_processing_capacity_tracks_running_vms(self, clock):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=100), initial_instances=1)
        cluster = SimStormCluster(fleet, StormConfig(cpu_noise_std=0.0), np.random.default_rng(0))
        assert cluster.processing_capacity(0) == 8000
        fleet.set_desired(3, now=0)
        # Booting VMs do not add capacity until ready.
        assert cluster.processing_capacity(50) == 8000
        assert cluster.processing_capacity(100) == 24000

    def test_cpu_per_vm_load_splits_across_vms(self, clock):
        cluster = make_cluster(vms=2)
        stream = SimKinesisStream(shards=8)
        feed(cluster, stream, 4000, clock)
        expected = 4.8 + (100 - 4.8) / 8000 * 2000
        assert cluster._tick_cpu == pytest.approx(expected)


class TestAggregation:
    def test_window_flush_emits_distinct_keys(self):
        clock = SimClock(tick_seconds=1)
        config = StormConfig(window_seconds=3, cpu_noise_std=0.0)
        cluster = make_cluster(vms=1, config=config)
        stream = SimKinesisStream(shards=1)
        writes = []
        for _ in range(6):
            clock.advance()
            writes.append(feed(cluster, stream, 100, clock, distinct=50))
        # Window flushes at ticks 3 and 6: mean of 50 distinct keys.
        assert writes == [0, 0, 50, 0, 0, 50]

    def test_rejects_negative_distinct(self, clock):
        cluster = make_cluster()
        stream = SimKinesisStream()
        with pytest.raises(ConfigurationError):
            cluster.pull_and_process(stream, -1, clock)


class TestMetrics:
    def test_emits_cluster_metrics(self, clock):
        cluster = make_cluster(vms=2)
        stream = SimKinesisStream(shards=4)
        feed(cluster, stream, 1000, clock)
        cw = SimCloudWatch()
        cluster.emit_metrics(cw, clock)
        dims = {"Topology": cluster.name}
        assert cw.get_series("Custom/Storm", "ProcessedRecords", dims)[1] == [1000.0]
        assert cw.get_series("Custom/Storm", "RunningVMs", dims)[1] == [2.0]

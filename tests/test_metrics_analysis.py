"""Unit tests for the evaluation metrics."""

import pytest

from repro.analysis import (
    integral_absolute_error,
    overshoot,
    resource_unit_hours,
    settling_time,
    slo_violation_rate,
)
from repro.core.errors import ConfigurationError
from repro.workload import Trace


class TestSloViolationRate:
    def test_counts_violations(self):
        trace = Trace("u", [(0, 50.0), (60, 90.0), (120, 70.0), (180, 95.0)])
        # SLO: utilisation <= 80. Violated at 90 and 95.
        assert slo_violation_rate(trace, "<=", 80.0) == 0.5

    def test_all_compliant(self):
        trace = Trace("u", [(0, 10.0), (60, 20.0)])
        assert slo_violation_rate(trace, "<=", 80.0) == 0.0

    def test_lower_bound_slo(self):
        trace = Trace("u", [(0, 5.0), (60, 20.0)])
        # SLO: throughput >= 10.
        assert slo_violation_rate(trace, ">=", 10.0) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            slo_violation_rate(Trace("e"), "<=", 1.0)
        with pytest.raises(ConfigurationError):
            slo_violation_rate(Trace("t", [(0, 1.0)]), "~", 1.0)


class TestSettlingTime:
    def trace(self):
        # Disturbed at t=300, back in band from t=540 onward.
        points = [(t, 60.0) for t in range(0, 300, 60)]
        points += [(300, 95.0), (360, 85.0), (420, 75.0), (480, 71.0)]
        points += [(t, 62.0) for t in range(540, 900, 60)]
        return Trace("u", points)

    def test_measures_from_disturbance(self):
        assert settling_time(self.trace(), 50.0, 70.0, start=300) == 240

    def test_none_when_never_settles(self):
        trace = Trace("u", [(0, 90.0), (60, 95.0), (120, 91.0)])
        assert settling_time(trace, 50.0, 70.0, start=0) is None

    def test_hold_requirement(self):
        # Enters the band at 540 but the trace ends at 840: a hold of
        # 600 s cannot be demonstrated.
        assert settling_time(self.trace(), 50.0, 70.0, start=300, hold_seconds=600) is None
        assert settling_time(self.trace(), 50.0, 70.0, start=300, hold_seconds=240) == 240

    def test_reentry_resets_candidate(self):
        points = [(0, 90.0), (60, 60.0), (120, 90.0), (180, 60.0), (240, 61.0)]
        trace = Trace("u", points)
        assert settling_time(trace, 50.0, 70.0, start=0) == 180

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            settling_time(self.trace(), 70.0, 50.0, start=0)
        with pytest.raises(ConfigurationError):
            settling_time(self.trace(), 50.0, 70.0, start=10_000)


class TestOvershoot:
    def test_max_excursion(self):
        trace = Trace("u", [(0, 60.0), (60, 95.0), (120, 80.0)])
        assert overshoot(trace, reference=60.0) == 35.0

    def test_zero_when_never_above(self):
        trace = Trace("u", [(0, 50.0), (60, 55.0)])
        assert overshoot(trace, reference=60.0) == 0.0

    def test_start_filters_early_samples(self):
        trace = Trace("u", [(0, 99.0), (60, 61.0)])
        assert overshoot(trace, reference=60.0, start=30) == 1.0


class TestIntegralAbsoluteError:
    def test_weights_by_hold_time(self):
        trace = Trace("u", [(0, 70.0), (100, 60.0)])
        # |70-60| held 100 s, |60-60| held median(100)=100 s.
        assert integral_absolute_error(trace, 60.0) == pytest.approx(1000.0)

    def test_single_point(self):
        assert integral_absolute_error(Trace("u", [(0, 65.0)]), 60.0) == 5.0


class TestResourceUnitHours:
    def test_integrates_capacity(self):
        trace = Trace("c", [(0, 2.0), (1800, 4.0), (3600, 2.0)])
        # 2 units * 0.5 h + 4 * 0.5 h + 2 * 0.5 h (median hold).
        assert resource_unit_hours(trace) == pytest.approx(4.0)

    def test_single_point_is_zero(self):
        assert resource_unit_hours(Trace("c", [(0, 5.0)])) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            resource_unit_hours(Trace("c"))

"""Unit tests for the click-stream generator."""

import pytest

from repro.core.errors import ConfigurationError
from repro.simulation import SimClock, derive_rng
from repro.workload import ClickStreamConfig, ClickStreamGenerator, ConstantRate


def make_generator(rate=1000.0, seed=0, **config_kwargs):
    return ClickStreamGenerator(
        ConstantRate(rate),
        rng=derive_rng(seed, "clicks"),
        config=ClickStreamConfig(**config_kwargs) if config_kwargs else None,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClickStreamConfig(mean_record_bytes=0)
        with pytest.raises(ConfigurationError):
            ClickStreamConfig(catalog_pages=0)
        with pytest.raises(ConfigurationError):
            ClickStreamConfig(record_bytes_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            ClickStreamConfig(zipf_exponent=-1)


class TestGeneration:
    def test_mean_rate_matches_pattern(self):
        generator = make_generator(rate=1000)
        clock = SimClock(tick_seconds=1)
        total = 0
        for _ in range(500):
            clock.advance()
            total += generator.generate(clock).records
        assert total / 500 == pytest.approx(1000, rel=0.05)

    def test_deterministic_given_seed(self):
        clock1, clock2 = SimClock(), SimClock()
        g1, g2 = make_generator(seed=9), make_generator(seed=9)
        for _ in range(10):
            clock1.advance()
            clock2.advance()
            assert g1.generate(clock1) == g2.generate(clock2)

    def test_zero_rate_yields_empty_batches(self):
        generator = make_generator(rate=0)
        clock = SimClock()
        clock.advance()
        batch = generator.generate(clock)
        assert batch.records == 0
        assert batch.payload_bytes == 0
        assert batch.distinct_keys == 0

    def test_payload_scales_with_records(self):
        generator = make_generator(rate=1000, mean_record_bytes=200, record_bytes_sigma=0.0)
        clock = SimClock()
        clock.advance()
        batch = generator.generate(clock)
        assert batch.payload_bytes == batch.records * 200

    def test_totals_accumulate(self):
        generator = make_generator(rate=100)
        clock = SimClock()
        produced = 0
        for _ in range(20):
            clock.advance()
            produced += generator.generate(clock).records
        assert generator.total_records == produced
        assert generator.total_bytes > 0


class TestDistinctPages:
    def test_distinct_capped_by_catalog(self):
        generator = make_generator(rate=100_000, catalog_pages=50)
        clock = SimClock()
        clock.advance()
        batch = generator.generate(clock)
        assert batch.distinct_keys <= 50

    def test_distinct_grows_sublinearly_with_volume(self):
        """Zipf popularity: 10x the clicks does not mean 10x the pages.

        This sublinearity is why the paper saw no correlation between
        ingestion write volume and storage write capacity.
        """
        lows, highs = [], []
        for seed in range(5):
            low = make_generator(rate=500, seed=seed, catalog_pages=2000)
            high = make_generator(rate=5000, seed=seed, catalog_pages=2000)
            clock_low, clock_high = SimClock(), SimClock()
            clock_low.advance()
            clock_high.advance()
            lows.append(low.generate(clock_low).distinct_keys)
            highs.append(high.generate(clock_high).distinct_keys)
        ratio = sum(highs) / sum(lows)
        assert 1.0 < ratio < 5.0  # far below the 10x volume ratio

    def test_uniform_catalog_distinct_count(self):
        # With zipf_exponent=0 (uniform), distinct count follows the
        # classic occupancy expectation.
        generator = make_generator(rate=1000, seed=3, catalog_pages=100, zipf_exponent=0.0)
        clock = SimClock()
        clock.advance()
        batch = generator.generate(clock)
        expected = 100 * (1 - (1 - 1 / 100) ** batch.records)
        assert batch.distinct_keys == pytest.approx(expected, rel=0.25)

"""Tests for run persistence."""

import json

import pytest

from repro import FlowBuilder, LayerKind
from repro.analysis import load_run_summary, load_run_traces, save_run
from repro.core.errors import ConfigurationError
from repro.workload import ConstantRate, ReplayRate


@pytest.fixture(scope="module")
def finished_run():
    return (
        FlowBuilder("persisted", seed=3)
        .workload(ConstantRate(700))
        .control_all(style="adaptive")
        .build()
        .run(900)
    )


class TestSaveRun:
    def test_writes_standard_artefacts(self, finished_run, tmp_path):
        directory = save_run(finished_run, tmp_path / "run1")
        names = {p.name for p in directory.iterdir()}
        assert "summary.json" in names
        assert "dashboard.txt" in names
        assert "ingestion_capacity.csv" in names
        assert "storage_throttle.csv" in names
        assert len([n for n in names if n.endswith(".csv")]) == 9

    def test_summary_contents(self, finished_run, tmp_path):
        directory = save_run(finished_run, tmp_path / "run2")
        with open(directory / "summary.json") as f:
            payload = json.load(f)
        assert payload["flow"] == "persisted"
        assert payload["duration_seconds"] == 900
        assert payload["total_cost"] > 0
        assert set(payload["layers"]) == {"ingestion", "analytics", "storage"}
        assert payload["layers"]["analytics"]["controller_actions"] >= 0

    def test_creates_nested_directories(self, finished_run, tmp_path):
        directory = save_run(finished_run, tmp_path / "deep" / "nested" / "run")
        assert directory.is_dir()


class TestLoadRun:
    def test_traces_roundtrip(self, finished_run, tmp_path):
        directory = save_run(finished_run, tmp_path / "run3")
        traces = load_run_traces(directory)
        assert len(traces) == 9
        capacity = traces[(LayerKind.INGESTION, "capacity")]
        original = finished_run.capacity_trace(LayerKind.INGESTION)
        assert capacity.values == original.values

    def test_summary_roundtrip(self, finished_run, tmp_path):
        directory = save_run(finished_run, tmp_path / "run4")
        summary = load_run_summary(directory)
        assert summary["flow"] == "persisted"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_run_traces(tmp_path / "nope")
        with pytest.raises(ConfigurationError):
            load_run_summary(tmp_path)

    def test_empty_directory_raises(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ConfigurationError):
            load_run_traces(empty)

    def test_saved_trace_feeds_replay(self, finished_run, tmp_path):
        """A persisted utilisation trace can drive a replay workload."""
        directory = save_run(finished_run, tmp_path / "run5")
        trace = load_run_traces(directory)[(LayerKind.INGESTION, "utilization")]
        replay = ReplayRate(trace)
        assert replay.rate(trace.times[0]) == trace.values[0]

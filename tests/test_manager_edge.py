"""Edge-case tests for the manager and service interplay."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.cloud import DynamoDBConfig, KinesisConfig
from repro.core.errors import ConfigurationError, SimulationError
from repro.workload import ConstantRate, StepRate


class TestCoarseTicks:
    def test_runs_with_ten_second_ticks(self):
        manager = (
            FlowBuilder("coarse", seed=3)
            .tick(10)
            .workload(ConstantRate(800))
            .control_all(style="adaptive")
            .build()
        )
        result = manager.run(3600)
        assert result.duration_seconds == 3600
        assert len(result.collector.snapshots) == 60

    def test_coarse_and_fine_ticks_agree_on_totals(self):
        def total_ingested(tick):
            manager = (
                FlowBuilder("tickcmp", seed=3)
                .tick(tick)
                .workload(ConstantRate(500))
                .build()
            )
            result = manager.run(1800)
            trace = result.trace(
                "AWS/Kinesis", "IncomingRecords", statistic="Sum",
                dimensions=result.layer_dimensions[LayerKind.INGESTION],
            )
            return sum(trace.values)

        fine = total_ingested(1)
        coarse = total_ingested(10)
        assert coarse == pytest.approx(fine, rel=0.05)

    def test_control_period_must_align_with_tick(self):
        builder = (
            FlowBuilder("misaligned", seed=3)
            .tick(7)
            .workload(ConstantRate(100))
            .control(LayerKind.ANALYTICS, style="adaptive", period=60)
        )
        with pytest.raises(SimulationError):
            builder.build()


class TestReshardingUnderLoad:
    def test_capacity_changes_mid_run_without_data_loss(self):
        manager = (
            FlowBuilder("reshard", seed=5)
            .ingestion(shards=1, config=KinesisConfig(
                base_reshard_seconds=60, reshard_seconds_per_shard=30))
            .workload(StepRate(base=500, level=2500, at=600))
            .control(LayerKind.INGESTION, style="adaptive")
            .build()
        )
        result = manager.run(3600)
        assert result.dropped_records == 0
        shards = result.capacity_trace(LayerKind.INGESTION)
        assert shards.maximum() >= 3


class TestBurstCreditInterplay:
    def test_burst_bucket_rides_out_window_flushes(self):
        """Writes arrive in window-flush spikes; the burst bucket must
        absorb them without throttling when average demand fits."""
        manager = (
            FlowBuilder("bursty-writes", seed=9)
            .storage(write_units=120, config=DynamoDBConfig(burst_seconds=300))
            .workload(ConstantRate(900))
            .build()
        )
        result = manager.run(1800)
        throttles = result.throttle_trace(LayerKind.STORAGE)
        assert sum(throttles.values) == 0.0

    def test_no_burst_credits_means_flush_throttling(self):
        manager = (
            FlowBuilder("no-burst", seed=9)
            .storage(write_units=120, config=DynamoDBConfig(burst_seconds=0))
            .workload(ConstantRate(900))
            .build()
        )
        result = manager.run(1800)
        throttles = result.throttle_trace(LayerKind.STORAGE)
        # Window flushes deliver ~10x the per-second provision at once.
        assert sum(throttles.values) > 0.0


class TestResultAccessors:
    @pytest.fixture(scope="class")
    def result(self):
        return (
            FlowBuilder("accessors", seed=3)
            .workload(ConstantRate(500))
            .build()
            .run(600)
        )

    def test_unknown_metric_trace_raises(self, result):
        from repro.core.errors import MonitoringError

        with pytest.raises(MonitoringError):
            result.trace("AWS/Kinesis", "NoSuchMetric",
                         dimensions=result.layer_dimensions[LayerKind.INGESTION])

    def test_trace_without_dimensions_raises(self, result):
        from repro.core.errors import MonitoringError

        # All service metrics are dimensioned; the rollup does not exist.
        with pytest.raises(MonitoringError):
            result.trace("AWS/Kinesis", "IncomingRecords")

    def test_custom_period_aggregation(self, result):
        per_minute = result.utilization_trace(LayerKind.INGESTION, period=60)
        per_5min = result.utilization_trace(LayerKind.INGESTION, period=300)
        assert len(per_minute) == 10
        assert len(per_5min) == 2

    def test_zero_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            FlowBuilder().ingestion(shards=0).workload(ConstantRate(1)).build()

"""Tests for the fixed-parallelism Storm topology model."""

import numpy as np
import pytest

from repro import FlowBuilder, LayerKind
from repro.cloud import (
    BoltSpec,
    EC2Config,
    SimEC2Fleet,
    SimKinesisStream,
    SimStormCluster,
    StormConfig,
    TopologyConfig,
)
from repro.core.errors import ConfigurationError
from repro.simulation import SimClock
from repro.workload import StepRate


def two_bolt_topology(rebalance=30):
    return TopologyConfig(
        bolts=(
            BoltSpec("parse", records_per_executor_per_second=500, executors=4),
            BoltSpec("aggregate", records_per_executor_per_second=250, executors=4),
        ),
        executor_slots_per_vm=4,
        rebalance_seconds=rebalance,
    )


def cluster_with(topology, vms=2, boot=0):
    fleet = SimEC2Fleet(config=EC2Config(boot_seconds=boot), initial_instances=vms)
    return SimStormCluster(
        fleet, StormConfig(cpu_noise_std=0.0), np.random.default_rng(0), topology=topology
    )


class TestTopologyConfig:
    def test_bottleneck_bolt_limits_capacity(self):
        topology = two_bolt_topology()
        # parse: 2000 rec/s, aggregate: 1000 rec/s -> bottleneck 1000.
        assert topology.capacity_with_slots(slots=8) == 1000

    def test_short_slots_scale_down_proportionally(self):
        topology = two_bolt_topology()
        # 4 slots for 8 executors: everything at half parallelism.
        assert topology.capacity_with_slots(slots=4) == 500

    def test_extra_slots_do_not_exceed_parallelism(self):
        topology = two_bolt_topology()
        assert topology.capacity_with_slots(slots=100) == 1000

    def test_zero_slots(self):
        assert two_bolt_topology().capacity_with_slots(0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(bolts=())
        with pytest.raises(ConfigurationError):
            BoltSpec("x", records_per_executor_per_second=0, executors=1)
        with pytest.raises(ConfigurationError):
            TopologyConfig(bolts=(
                BoltSpec("a", 100, 1), BoltSpec("a", 100, 1),
            ))
        with pytest.raises(ConfigurationError):
            TopologyConfig(bolts=(BoltSpec("a", 100, 1),), executor_slots_per_vm=0)


class TestRebalance:
    def test_capacity_frozen_until_rebalance_completes(self):
        cluster = cluster_with(two_bolt_topology(rebalance=30), vms=1)
        stream = SimKinesisStream(shards=4)
        clock = SimClock()
        clock.advance()
        # 1 VM = 4 slots = half parallelism = 500 rec/s.
        assert cluster.processing_capacity(clock.now) == 500
        cluster.fleet.set_desired(2, now=clock.now)
        # The new VM triggers a rebalance: the topology pauses...
        clock.advance()
        stream.put_records(100, 0, clock)
        cluster.pull_and_process(stream, 0, clock)
        assert cluster.rebalancing(clock.now)
        assert cluster.processing_capacity(clock.now) == 0
        # ...and full capacity arrives only after the window.
        for _ in range(35):
            clock.advance()
            cluster.pull_and_process(stream, 0, clock)
        assert not cluster.rebalancing(clock.now)
        assert cluster.processing_capacity(clock.now) == 1000

    def test_records_queue_during_rebalance(self):
        cluster = cluster_with(two_bolt_topology(rebalance=10), vms=1)
        stream = SimKinesisStream(shards=4)
        clock = SimClock()
        clock.advance()
        cluster.pull_and_process(stream, 0, clock)  # settle the VM count
        cluster.fleet.set_desired(2, now=clock.now)
        backlog_before = stream.backlog_records
        for _ in range(5):
            clock.advance()
            stream.put_records(400, 0, clock)
            cluster.pull_and_process(stream, 0, clock)
        # Paused topology: everything waits in the stream or pending.
        assert stream.backlog_records + cluster.pending_records >= backlog_before + 1500

    def test_rebalance_consumes_fleet_change_trace(self):
        """The delayed rebalance publish carries the fleet's
        ``last_change_trace`` exactly once: a later VM-count change
        that sets no trace of its own must not inherit a stale one."""
        from repro.observability import EventBus

        cluster = cluster_with(two_bolt_topology(rebalance=5), vms=1)
        bus = EventBus()
        cluster.attach_bus(bus)
        stream = SimKinesisStream(shards=4)
        clock = SimClock()
        clock.advance()
        cluster.pull_and_process(stream, 0, clock)  # settle the VM count
        cluster.fleet.last_change_trace = "analytics@60"
        cluster.fleet.set_desired(2, now=clock.now)
        clock.advance()
        cluster.pull_and_process(stream, 0, clock)
        first = [e for e in bus.events if e.kind == "rebalance"]
        assert len(first) == 1 and first[0].trace == "analytics@60"
        assert cluster.fleet.last_change_trace is None
        # Ride out the window, then change the count with no trace set.
        for _ in range(10):
            clock.advance()
            cluster.pull_and_process(stream, 0, clock)
        cluster.fleet.set_desired(1, now=clock.now)
        clock.advance()
        cluster.pull_and_process(stream, 0, clock)
        rebalances = [e for e in bus.events if e.kind == "rebalance"]
        assert len(rebalances) == 2
        assert rebalances[1].trace is None

    def test_no_topology_means_no_rebalance(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=0), initial_instances=1)
        cluster = SimStormCluster(fleet, StormConfig(cpu_noise_std=0.0),
                                  np.random.default_rng(0))
        fleet.set_desired(2, now=0)
        assert not cluster.rebalancing(0)
        assert cluster.processing_capacity(0) == 16000


class TestManagedTopologyFlow:
    def _manager(self, period):
        topology = TopologyConfig(
            bolts=(
                BoltSpec("parse", records_per_executor_per_second=250, executors=16),
                BoltSpec("aggregate", records_per_executor_per_second=250, executors=16),
            ),
            executor_slots_per_vm=4,
            rebalance_seconds=30,
        )
        return (
            FlowBuilder("topology-flow", seed=19)
            .ingestion(shards=4)
            .analytics(vms=2, topology=topology)
            .storage(write_units=300)
            .workload(StepRate(base=800, level=2400, at=1200))
            .control(LayerKind.ANALYTICS, style="adaptive", reference=60.0,
                     period=period)
            .build()
        )

    def test_fast_control_of_rebalancing_topology_is_a_hazard(self):
        """Each scale action pauses the topology; the pause creates
        backlog; backlog reads as saturated CPU; a controller acting
        every minute keeps adding VMs — the rebalance-storm feedback
        loop real Storm operators know. The model must reproduce it."""
        result = self._manager(period=60).run(4800)
        vms = result.capacity_trace(LayerKind.ANALYTICS)
        # Runaway: far more VMs than the 8 the workload needs.
        assert vms.maximum() > 30

    def test_slow_control_rides_out_rebalances(self):
        """A monitoring period longer than rebalance+drain converges."""
        result = self._manager(period=300).run(4800)
        vms = result.capacity_trace(LayerKind.ANALYTICS)
        assert 2 < vms.values[-1] <= 16
        pending = result.trace(
            "Custom/Storm", "PendingTuples",
            dimensions=result.layer_dimensions[LayerKind.ANALYTICS],
        )
        assert pending.values[-1] == 0.0
        cpu_tail = result.utilization_trace(LayerKind.ANALYTICS).slice(3600, 4800)
        assert cpu_tail.mean() < 90.0

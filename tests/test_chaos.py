"""Chaos harness tests: schedule DSL, per-layer injectors, control-plane
hardening (retry/backoff/circuit breaker, sensor hold-last), and the
always-on invariant checker — including a deliberately broken simulator
mutation the checker must catch."""

import pytest

from repro import ChaosSchedule, FaultKind, FaultSpec, FlowBuilder, LayerKind
from repro.chaos import FAULT_LAYER, recovery_times
from repro.cloud import SimCloudWatch, SimDynamoDBTable, SimEC2Fleet, SimKinesisStream
from repro.cloud.storm import SimStormCluster
from repro.control.actuators import RetryingActuator
from repro.control.base import Actuator
from repro.control.sensors import CloudWatchSensor
from repro.core.errors import ConfigurationError, SimulationError, TransientAPIError
from repro.observability.events import EventBus
from repro.simulation import SimClock
from repro.simulation.faults import ScheduledVMFaults
from repro.workload import ConstantRate, SinusoidalRate


def _sine_chaos_builder(schedule, seed=11):
    return (
        FlowBuilder("chaos", seed=seed)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1200, amplitude=600, period=600))
        .control_all(style="adaptive", reference=60.0, period=30)
        .chaos(schedule)
    )


# ----------------------------------------------------------------------
# Scenario DSL
# ----------------------------------------------------------------------
class TestFaultSpecValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=-1, duration=10, intensity=0.5)

    def test_point_fault_rejects_duration(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.WORKER_CRASH, start=10, duration=5, intensity=1)

    def test_windowed_fault_requires_duration(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.THROTTLE_STORM, start=10, duration=0, intensity=0.5)

    @pytest.mark.parametrize("intensity", [0.0, 1.0, 1.5, -0.2])
    def test_fraction_kinds_require_open_unit_interval(self, intensity):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=0, duration=60, intensity=intensity)

    def test_scalar_kinds_require_at_least_one(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.RESHARD_STALL, start=0, duration=60, intensity=0.5)

    def test_kind_coerced_from_string(self):
        spec = FaultSpec(kind="metric-dropout", start=5, duration=10)
        assert spec.kind is FaultKind.METRIC_DROPOUT
        assert spec.layer == "monitoring"

    def test_every_kind_has_a_layer(self):
        assert set(FAULT_LAYER) == set(FaultKind)


class TestChaosScheduleValidation:
    def test_same_kind_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSchedule(faults=(
                FaultSpec(kind=FaultKind.THROTTLE_STORM, start=0, duration=100, intensity=0.5),
                FaultSpec(kind=FaultKind.THROTTLE_STORM, start=99, duration=50, intensity=0.3),
            ))

    def test_back_to_back_windows_allowed(self):
        schedule = ChaosSchedule(faults=(
            FaultSpec(kind=FaultKind.THROTTLE_STORM, start=0, duration=100, intensity=0.5),
            FaultSpec(kind=FaultKind.THROTTLE_STORM, start=100, duration=50, intensity=0.3),
        ))
        assert len(schedule.faults) == 2

    def test_different_kinds_may_overlap(self):
        schedule = ChaosSchedule(faults=(
            FaultSpec(kind=FaultKind.THROTTLE_STORM, start=0, duration=100, intensity=0.5),
            FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=50, duration=100, intensity=0.5),
        ))
        assert schedule.layers == {"storage", "ingestion"}

    def test_point_faults_never_overlap(self):
        schedule = ChaosSchedule(faults=(
            FaultSpec(kind=FaultKind.WORKER_CRASH, start=10, intensity=1),
            FaultSpec(kind=FaultKind.WORKER_CRASH, start=10, intensity=2),
        ))
        assert len(schedule.faults) == 2

    def test_empty_schedule_is_falsy(self):
        assert not ChaosSchedule()
        assert ChaosSchedule(faults=(FaultSpec(kind=FaultKind.METRIC_DROPOUT, start=0, duration=1),))

    def test_json_roundtrip(self):
        schedule = ChaosSchedule(
            faults=(
                FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=60, duration=120, intensity=0.4),
                FaultSpec(kind=FaultKind.WORKER_CRASH, start=300, intensity=2),
            ),
            seed=99,
            name="roundtrip",
        )
        restored = ChaosSchedule.from_json(schedule.to_json())
        assert restored == schedule
        assert restored.name == "roundtrip"


# ----------------------------------------------------------------------
# Per-service fault hooks
# ----------------------------------------------------------------------
class TestKinesisFaults:
    def test_brownout_scales_write_capacity(self):
        stream = SimKinesisStream(shards=4)
        base_records = stream.write_capacity_records(0)
        base_bytes = stream.write_capacity_bytes(0)
        stream.set_brownout(0.5)
        assert stream.write_capacity_records(0) == int(base_records * 0.5)
        assert stream.write_capacity_bytes(0) == int(base_bytes * 0.5)
        stream.clear_brownout()
        assert stream.write_capacity_records(0) == base_records

    def test_brownout_validation(self):
        stream = SimKinesisStream(shards=1)
        with pytest.raises(ConfigurationError):
            stream.set_brownout(1.0)
        with pytest.raises(ConfigurationError):
            stream.set_brownout(0.0)

    def test_reshard_stall_stretches_new_reshards(self):
        plain = SimKinesisStream(shards=2)
        plain.update_shard_count(4, now=0)
        plain_ready = plain._reshard_ready_at

        stalled = SimKinesisStream(shards=2)
        stalled.set_reshard_stall(3.0)
        stalled.update_shard_count(4, now=0)
        assert stalled._reshard_ready_at == 3 * plain_ready

    def test_stall_inflight_reshard_extends_remaining_time(self):
        stream = SimKinesisStream(shards=2)
        stream.update_shard_count(4, now=0)
        ready = stream._reshard_ready_at
        stream.set_reshard_stall(2.0)
        extended = stream.stall_inflight_reshard(now=10)
        assert extended == 10 + 2 * (ready - 10)
        assert stream.resharding(ready + 1)
        # No reshard in flight: nothing to stall.
        assert stream.stall_inflight_reshard(now=extended + 1) is None


class TestStormFaults:
    def test_forced_rebalance_pauses_processing(self):
        fleet = SimEC2Fleet(initial_instances=2)
        cluster = SimStormCluster(fleet)
        until = cluster.force_rebalance(now=100, duration=60)
        assert until == 160
        assert cluster.rebalancing(100)
        assert cluster._capacity_this_tick(2, 100) == 0
        assert not cluster.rebalancing(160)
        assert cluster._capacity_this_tick(2, 160) > 0

    def test_forced_rebalance_extends_not_shrinks(self):
        fleet = SimEC2Fleet(initial_instances=1)
        cluster = SimStormCluster(fleet)
        cluster.force_rebalance(now=0, duration=100)
        assert cluster.force_rebalance(now=10, duration=20) == 100

    def test_next_capacity_event_reports_forced_window_end(self):
        fleet = SimEC2Fleet(initial_instances=1)
        cluster = SimStormCluster(fleet)
        until = cluster.force_rebalance(now=0, duration=45)
        assert cluster.next_capacity_event(10) == until


class TestDynamoDBFaults:
    def test_throttle_storm_scales_effective_capacity_only(self):
        table = SimDynamoDBTable(write_units=200, read_units=100)
        table.set_throttle_storm(0.6)
        assert table.effective_write_capacity(0) == int(200 * 0.4)
        assert table.effective_read_capacity(0) == int(100 * 0.4)
        # Provisioned (billed) capacity is untouched by the storm.
        assert table.write_capacity(0) == 200
        assert table.read_capacity(0) == 100
        table.clear_throttle_storm()
        assert table.effective_write_capacity(0) == 200

    def test_throttle_storm_rejects_excess_writes(self):
        clock = SimClock()
        clock.advance()
        healthy = SimDynamoDBTable(write_units=100, config=None)
        healthy._burst_bucket = 0.0
        accepted_healthy = healthy.write(100, clock).accepted_units

        stormy = SimDynamoDBTable(write_units=100, config=None)
        stormy._burst_bucket = 0.0
        stormy.set_throttle_storm(0.5)
        accepted_stormy = stormy.write(100, clock).accepted_units
        assert accepted_stormy < accepted_healthy

    def test_update_reject_raises_transient_error(self):
        table = SimDynamoDBTable(write_units=100, read_units=50)
        table.fail_updates()
        with pytest.raises(TransientAPIError):
            table.update_write_capacity(150, now=0)
        with pytest.raises(TransientAPIError):
            table.update_read_capacity(80, now=0)
        table.restore_updates()
        assert table.update_write_capacity(150, now=0) == 150


class TestMonitoringFaults:
    @staticmethod
    def _sensor(cloudwatch, hold=0):
        return CloudWatchSensor(cloudwatch, "NS", "M", window=60, hold_last_for=hold)

    def test_delay_shifts_the_read_window(self):
        cw = SimCloudWatch()
        cw.put_metric_data("NS", "M", 10.0, 100)
        cw.put_metric_data("NS", "M", 90.0, 200)
        sensor = self._sensor(cw)
        assert sensor.measure(230) == 90.0
        cw.sensor_delay_seconds = 100
        assert sensor.measure(230) == 10.0  # sees the window ending at 130

    def test_dropout_returns_none_without_hold_budget(self):
        cw = SimCloudWatch()
        cw.put_metric_data("NS", "M", 42.0, 50)
        sensor = self._sensor(cw)
        assert sensor.measure(60) == 42.0
        cw.sensor_dropout = True
        assert sensor.measure(120) is None
        assert sensor.last_stale is False

    def test_dropout_serves_held_value_within_budget(self):
        cw = SimCloudWatch()
        cw.put_metric_data("NS", "M", 42.0, 50)
        sensor = self._sensor(cw, hold=180)
        assert sensor.measure(60) == 42.0
        cw.sensor_dropout = True
        assert sensor.measure(120) == 42.0
        assert sensor.last_stale is True
        # Past the staleness budget the sensor gives up.
        assert sensor.measure(60 + 181) is None

    def test_degraded_events_published_once_per_episode(self):
        cw = SimCloudWatch()
        cw.put_metric_data("NS", "M", 42.0, 50)
        bus = EventBus()
        sensor = self._sensor(cw, hold=300)
        sensor.instrument(bus, "monitoring")
        sensor.measure(60)
        cw.sensor_dropout = True
        sensor.measure(120)
        sensor.measure(180)
        cw.sensor_dropout = False
        cw.put_metric_data("NS", "M", 50.0, 200)
        assert sensor.measure(240) == 50.0
        kinds = [e.kind for e in bus]
        assert kinds.count("degraded.sensor") == 1
        assert kinds.count("degraded.recovered") == 1


# ----------------------------------------------------------------------
# Retry + circuit breaker
# ----------------------------------------------------------------------
class _ScriptedActuator(Actuator):
    """Inner actuator whose per-attempt outcomes follow a script.

    ``script`` holds one bool per *attempt*: True fails the attempt with
    TransientAPIError, False lets it succeed. An exhausted script always
    succeeds.
    """

    def __init__(self, script=()):
        self.script = list(script)
        self.capacity = 5.0
        self.attempts = 0

    def get(self, now):
        return self.capacity

    def apply(self, target, now):
        self.attempts += 1
        if self.script and self.script.pop(0):
            raise TransientAPIError("injected")
        self.capacity = target
        return target


class TestRetryingActuator:
    def test_retries_through_transient_failures(self):
        inner = _ScriptedActuator([True, True, False])
        actuator = RetryingActuator(inner, max_attempts=3)
        assert actuator.apply(8.0, now=0) == 8.0
        assert inner.attempts == 3
        assert actuator.failed_attempts == 2
        assert actuator.circuit_open_until == 0

    def test_exhausted_call_returns_current_capacity(self):
        inner = _ScriptedActuator([True, True, True])
        actuator = RetryingActuator(inner, max_attempts=3, breaker_threshold=2)
        assert actuator.apply(8.0, now=0) == 5.0  # shed: capacity untouched
        assert actuator.circuit_open_until == 0  # one failure, threshold 2

    def test_breaker_opens_after_threshold_and_sheds(self):
        inner = _ScriptedActuator([True] * 6)
        actuator = RetryingActuator(
            inner, max_attempts=3, breaker_threshold=2, cooldown_seconds=60
        )
        actuator.apply(8.0, now=0)
        actuator.apply(8.0, now=30)
        assert actuator.circuit_open_until == 30 + 60
        # While open, the inner actuator is not even tried.
        before = inner.attempts
        assert actuator.apply(9.0, now=45) == 5.0
        assert inner.attempts == before

    def test_half_open_probe_success_closes_and_resets(self):
        inner = _ScriptedActuator([True] * 6)
        bus = EventBus()
        actuator = RetryingActuator(
            inner, max_attempts=3, breaker_threshold=2, cooldown_seconds=60
        )
        actuator.instrument(bus, "storage")
        actuator.apply(8.0, now=0)
        actuator.apply(8.0, now=30)  # opens until 90
        assert actuator.apply(9.0, now=120) == 9.0  # half-open probe succeeds
        kinds = [e.kind for e in bus]
        assert kinds.count("circuit.open") == 1
        assert kinds.count("circuit.close") == 1
        assert kinds.count("actuation.retry") == 6
        # Backoff reset: the next opening starts at the base cooldown.
        inner.script = [True] * 6
        actuator.apply(8.0, now=200)
        actuator.apply(8.0, now=230)
        assert actuator.circuit_open_until == 230 + 60

    def test_reopening_doubles_cooldown_up_to_cap(self):
        inner = _ScriptedActuator([True] * 100)
        actuator = RetryingActuator(
            inner, max_attempts=1, breaker_threshold=1,
            cooldown_seconds=60, max_cooldown_seconds=200,
        )
        now, cooldowns = 0, []
        for _ in range(4):
            actuator.apply(8.0, now=now)
            cooldowns.append(actuator.circuit_open_until - now)
            now = actuator.circuit_open_until  # next call is the probe
        assert cooldowns == [60, 120, 200, 200]

    def test_reads_always_pass_through(self):
        inner = _ScriptedActuator([True] * 10)
        actuator = RetryingActuator(inner, max_attempts=1, breaker_threshold=1)
        actuator.apply(8.0, now=0)  # opens the circuit
        assert actuator.get(10) == 5.0


# ----------------------------------------------------------------------
# Injector determinism + span regression
# ----------------------------------------------------------------------
FULL_SCHEDULE = ChaosSchedule(faults=(
    FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=300, duration=300, intensity=0.5),
    FaultSpec(kind=FaultKind.WORKER_CRASH, start=900, intensity=1),
    FaultSpec(kind=FaultKind.THROTTLE_STORM, start=1200, duration=300, intensity=0.6),
    FaultSpec(kind=FaultKind.METRIC_DROPOUT, start=1600, duration=120),
), seed=7)


class TestChaosRuns:
    def test_same_schedule_and_seed_reproduce_exactly(self):
        def run():
            result = _sine_chaos_builder(FULL_SCHEDULE).build().run(1800)
            fingerprint = [
                (key[0], key[1], len(series.times), float(series.values.sum()))
                for key, series in sorted(result.cloudwatch._series.items())
            ]
            return result.chaos_events, fingerprint

        events_a, metrics_a = run()
        events_b, metrics_b = run()
        assert events_a == events_b
        assert metrics_a == metrics_b

    def test_every_fault_appears_in_the_timeline(self):
        result = _sine_chaos_builder(FULL_SCHEDULE).build().run(1800)
        injected = {e.fault for e in result.chaos_events if e.phase == "inject"}
        assert injected == {
            "shard-brownout", "worker-crash", "throttle-storm", "metric-dropout",
        }
        cleared = {e.fault for e in result.chaos_events if e.phase == "clear"}
        assert "worker-crash" not in cleared  # point fault: nothing to clear
        assert {"shard-brownout", "throttle-storm", "metric-dropout"} <= cleared

    def test_worker_crash_kills_requested_count(self):
        schedule = ChaosSchedule(
            faults=(FaultSpec(kind=FaultKind.WORKER_CRASH, start=60, intensity=2),), seed=3
        )
        manager = (
            FlowBuilder("crash", seed=5)
            .ingestion(shards=2)
            .analytics(vms=4)
            .storage(write_units=300)
            .workload(ConstantRate(800))
            .chaos(schedule)
            .build()
        )
        manager.run(120)
        assert manager.fleet.running_count(120) == 2
        crash = [e for e in manager.chaos_injector.events if e.fault == "worker-crash"]
        assert len(crash) == 1 and crash[0].detail.startswith("instances=")

    def test_chaos_keeps_span_execution_enabled(self):
        manager = _sine_chaos_builder(FULL_SCHEDULE).build()
        manager.run(1800)
        assert manager.engine.last_run_used_spans is True

    def test_scheduled_vm_faults_keep_span_execution_enabled(self):
        """Regression: registering a fault injector used to silently
        knock the engine back to the per-tick loop."""
        manager = (
            FlowBuilder("legacy-faults", seed=5)
            .ingestion(shards=2)
            .analytics(vms=3)
            .storage(write_units=300)
            .workload(ConstantRate(900))
            .control(LayerKind.ANALYTICS, style="adaptive", reference=60.0)
            .build()
        )
        manager.engine.add_component(ScheduledVMFaults(manager.fleet, kill_times=[600]))
        manager.run(1200)
        assert manager.engine.last_run_used_spans is True

    def test_recovery_times_cover_layer_faults(self):
        result = _sine_chaos_builder(FULL_SCHEDULE).build().run(3600)
        samples = recovery_times(result, hold_seconds=120)
        by_fault = {s.fault: s for s in samples}
        # Monitoring faults have no layer utilization trace to settle.
        assert set(by_fault) == {"shard-brownout", "worker-crash", "throttle-storm"}
        assert by_fault["shard-brownout"].layer == "ingestion"
        assert by_fault["worker-crash"].injected_at == 900
        # The adaptive controller must actually recover from each one.
        assert all(s.recovered for s in samples)


# ----------------------------------------------------------------------
# Invariant checker
# ----------------------------------------------------------------------
class _SpanAwareCorruptor:
    """Deliberately broken 'simulator': leaks records into the stream
    buffer at t>=when, violating stream conservation. Span-compatible so
    the checker must catch it in either execution mode."""

    def __init__(self, stream, when=300, amount=1000):
        self.stream = stream
        self.when = when
        self.amount = amount
        self.done = False

    def _corrupt(self, now):
        if not self.done and now >= self.when:
            self.stream._buffer_records += self.amount
            self.done = True

    def on_tick(self, clock):
        self._corrupt(clock.now)

    def span_horizon(self, now, limit, tick_seconds):
        if self.done:
            return limit
        if self.when <= now:
            return now + tick_seconds
        due = now + tick_seconds * -(-(self.when - now) // tick_seconds)
        return min(limit, due)

    def run_span(self, clock, span_end):
        self._corrupt(span_end)


class TestInvariantChecker:
    def test_clean_run_has_zero_violations(self):
        result = _sine_chaos_builder(FULL_SCHEDULE).build().run(1800)
        report = result.invariants
        assert report is not None
        assert report.ok
        assert report.total_violations == 0
        assert report.checks > 0
        assert "violations: 0" in report.describe()

    def test_can_be_disabled(self):
        manager = (
            FlowBuilder("no-inv", seed=1)
            .workload(ConstantRate(500))
            .invariants(False)
            .build()
        )
        result = manager.run(300)
        assert manager.invariant_checker is None
        assert result.invariants is None

    @pytest.mark.parametrize("spans", [False, True])
    def test_broken_simulator_mutation_is_caught(self, spans):
        manager = (
            FlowBuilder("broken", seed=9)
            .ingestion(shards=2)
            .analytics(vms=2)
            .storage(write_units=300)
            .workload(ConstantRate(900))
            .control_all(style="adaptive", reference=60.0, period=30)
            .spans(spans)
            .build()
        )
        manager.engine.add_component(_SpanAwareCorruptor(manager.stream, when=300))
        result = manager.run(900)
        report = result.invariants
        assert not report.ok
        assert report.counts.get("conservation.stream", 0) >= 1
        assert any(v.invariant == "conservation.stream" for v in report.samples)

    def test_strict_mode_raises(self):
        manager = (
            FlowBuilder("strict", seed=9)
            .workload(ConstantRate(900))
            .build()
        )
        manager.invariant_checker._strict = True
        manager.engine.add_component(_SpanAwareCorruptor(manager.stream, when=120))
        with pytest.raises(SimulationError, match="conservation.stream"):
            manager.run(600)

    def test_violation_events_published_and_capped(self):
        manager = (
            FlowBuilder("events", seed=9)
            .workload(ConstantRate(900))
            .observe()
            .build()
        )
        manager.engine.add_component(_SpanAwareCorruptor(manager.stream, when=60))
        manager.run(600)
        violations = [e for e in manager.recorder.bus if e.kind == "invariant.violation"]
        assert violations
        assert len(violations) <= 10  # MAX_EVENTS_PER_INVARIANT

    def test_mttr_probe_records_degradation_episodes(self):
        # A brownout forces a producer backlog, then clears: the probe
        # must record a closed ingestion episode.
        schedule = ChaosSchedule(faults=(
            FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=300, duration=300, intensity=0.7),
        ), seed=1)
        result = _sine_chaos_builder(schedule).build().run(1800)
        report = result.invariants
        ingestion = [e for e in report.episodes if e.layer == "ingestion" and e.end is not None]
        assert ingestion
        assert report.mttr_seconds("ingestion") > 0

    def test_checker_catches_fleet_bound_breach(self):
        manager = (
            FlowBuilder("bounds", seed=2)
            .workload(ConstantRate(500))
            .build()
        )
        checker = manager.invariant_checker
        # Shrink the configured ceiling behind the checker's back: the
        # two initial instances are now out of bounds.
        object.__setattr__(manager.fleet.config, "max_instances", 1)
        checker._check_capacity_bounds(0)
        assert checker.counts.get("bounds.analytics", 0) >= 1

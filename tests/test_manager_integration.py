"""Integration tests: the full managed flow end to end."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.workload import ConstantRate, StepRate


def run_flow(pattern, duration=1800, control=None, seed=3, **builder_kwargs):
    builder = (
        FlowBuilder("integration", seed=seed)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(pattern)
    )
    if control:
        builder = builder.control_all(style=control)
    return builder.build().run(duration)


class TestUncontrolledFlow:
    @pytest.fixture(scope="class")
    def result(self):
        return run_flow(ConstantRate(800), duration=900)

    def test_records_flow_through_all_layers(self, result):
        ingested = result.trace(
            "AWS/Kinesis", "IncomingRecords", statistic="Sum",
            dimensions=result.layer_dimensions[LayerKind.INGESTION],
        )
        processed = result.trace(
            "Custom/Storm", "ProcessedRecords", statistic="Sum",
            dimensions=result.layer_dimensions[LayerKind.ANALYTICS],
        )
        consumed = result.trace(
            "AWS/DynamoDB", "ConsumedWriteCapacityUnits", statistic="Sum",
            dimensions=result.layer_dimensions[LayerKind.STORAGE],
        )
        assert sum(ingested.values) > 0.95 * 800 * 900
        assert sum(processed.values) == pytest.approx(sum(ingested.values), rel=0.02)
        assert sum(consumed.values) > 0

    def test_capacities_stay_static_without_controllers(self, result):
        for kind, expected in [
            (LayerKind.INGESTION, 2.0),
            (LayerKind.ANALYTICS, 2.0),
            (LayerKind.STORAGE, 300.0),
        ]:
            trace = result.capacity_trace(kind)
            assert set(trace.values) == {expected}

    def test_cost_accrues_for_every_layer(self, result):
        costs = result.cost_by_layer
        assert set(costs) == {"ingestion", "analytics", "storage", "storage_reads"}
        assert all(v > 0 for v in costs.values())
        assert result.total_cost == pytest.approx(sum(costs.values()))

    def test_snapshots_collected_each_minute(self, result):
        assert len(result.collector.snapshots) == 15

    def test_dashboard_renders(self, result):
        output = result.dashboard()
        assert "ingestion.records" in output
        assert "storage.wcu" in output

    def test_no_data_loss_at_steady_state(self, result):
        assert result.dropped_records == 0
        assert result.dropped_writes == 0


class TestControlledFlow:
    @pytest.fixture(scope="class")
    def result(self):
        # Step from light to heavy load: 600 -> 2600 rec/s at t=1800.
        pattern = StepRate(base=600, level=2600, at=1800)
        return run_flow(pattern, duration=5400, control="adaptive")

    def test_ingestion_scales_up_after_step(self, result):
        shards = result.capacity_trace(LayerKind.INGESTION)
        before = shards.slice(0, 1800).maximum()
        after = shards.slice(3600, 5400).minimum()
        assert after > before

    def test_utilization_driven_back_below_slo(self, result):
        util = result.utilization_trace(LayerKind.INGESTION)
        tail = util.slice(4200, 5400)
        assert tail.mean() < 85.0

    def test_throttling_is_transient(self, result):
        throttles = result.throttle_trace(LayerKind.INGESTION)
        tail = throttles.slice(4200, 5400)
        assert sum(tail.values) == 0.0

    def test_storage_tracks_write_demand(self, result):
        wcu = result.capacity_trace(LayerKind.STORAGE)
        # Storage scales down from the over-provisioned 300 WCU.
        assert wcu.values[-1] < 300.0

    def test_control_records_exist_for_all_layers(self, result):
        for kind in LayerKind:
            assert len(result.loops[kind].records) > 10

    def test_elastic_run_costs_less_than_static_peak(self, result):
        from repro.analysis import CostSummary
        from repro.cloud.pricing import PriceBook

        traces = {
            result.flow.layer(kind).resource: result.capacity_trace(kind)
            for kind in LayerKind
        }
        summary = CostSummary.from_traces(traces, PriceBook())
        assert summary.savings > 0.0


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = run_flow(ConstantRate(900), duration=600, control="adaptive", seed=11)
        b = run_flow(ConstantRate(900), duration=600, control="adaptive", seed=11)
        assert a.total_cost == b.total_cost
        assert a.capacity_trace(LayerKind.INGESTION).values == b.capacity_trace(
            LayerKind.INGESTION
        ).values

    def test_different_seed_differs(self):
        a = run_flow(ConstantRate(900), duration=600, seed=11)
        b = run_flow(ConstantRate(900), duration=600, seed=12)
        ta = a.trace("AWS/Kinesis", "IncomingRecords", statistic="Sum",
                     dimensions=a.layer_dimensions[LayerKind.INGESTION])
        tb = b.trace("AWS/Kinesis", "IncomingRecords", statistic="Sum",
                     dimensions=b.layer_dimensions[LayerKind.INGESTION])
        assert ta.values != tb.values


class TestBackpressure:
    def test_underprovisioned_analytics_backs_up_the_stream(self):
        """Cross-layer coupling: slow analytics shows up upstream."""
        from repro.cloud.storm import StormConfig
        from repro.workload import ConstantRate

        builder = (
            FlowBuilder("backpressure", seed=5)
            .ingestion(shards=4)
            .analytics(vms=1, storm=StormConfig(records_per_vm_per_second=500))
            .storage(write_units=300)
            .workload(ConstantRate(2000))
        )
        result = builder.build().run(600)
        backlog = result.trace(
            "AWS/Kinesis", "BacklogRecords",
            dimensions=result.layer_dimensions[LayerKind.INGESTION],
        )
        assert backlog.values[-1] > backlog.values[0]
        pending_or_backlog = backlog.values[-1]
        assert pending_or_backlog > 100_000

"""Unit tests for the NSGA-II implementation.

Validated against problems with known Pareto fronts (Schaffer's SCH,
a constrained variant of Binh-Korn) and against the algorithm's own
structural invariants (sorting correctness, crowding behaviour,
determinism).
"""

import numpy as np
import pytest

from repro.core.errors import OptimizationError
from repro.optimization import NSGA2, NSGA2Config, FunctionalProblem
from repro.optimization.nsga2 import (
    Individual,
    constrained_dominates,
    crowding_distance,
    fast_non_dominated_sort,
)


def individual(f, violation=0.0):
    return Individual(x=np.zeros(1), f=np.asarray(f, dtype=float), violation=violation)


class TestConstrainedDominance:
    def test_feasible_beats_infeasible(self):
        assert constrained_dominates(individual([9, 9]), individual([1, 1], violation=0.1))

    def test_infeasibles_compare_by_violation(self):
        assert constrained_dominates(
            individual([9, 9], violation=0.1), individual([1, 1], violation=0.5)
        )

    def test_feasibles_compare_by_pareto(self):
        assert constrained_dominates(individual([1, 1]), individual([2, 2]))
        assert not constrained_dominates(individual([1, 3]), individual([3, 1]))


class TestFastNonDominatedSort:
    def test_ranks_layered_fronts(self):
        population = [
            individual([1, 1]),  # rank 0
            individual([2, 2]),  # rank 1
            individual([3, 3]),  # rank 2
            individual([0, 4]),  # rank 0 (trade-off with [1,1])
        ]
        fronts = fast_non_dominated_sort(population)
        assert sorted(fronts[0]) == [0, 3]
        assert fronts[1] == [1]
        assert fronts[2] == [2]
        assert [p.rank for p in population] == [0, 1, 2, 0]

    def test_single_front(self):
        population = [individual([1, 3]), individual([2, 2]), individual([3, 1])]
        fronts = fast_non_dominated_sort(population)
        assert len(fronts) == 1

    def test_infeasible_ranked_below_feasible(self):
        population = [individual([5, 5]), individual([0, 0], violation=1.0)]
        fronts = fast_non_dominated_sort(population)
        assert fronts[0] == [0]
        assert fronts[1] == [1]


class TestCrowdingDistance:
    def test_extremes_are_infinite(self):
        population = [individual([1, 3]), individual([2, 2]), individual([3, 1])]
        crowding_distance(population, [0, 1, 2])
        assert population[0].crowding == np.inf
        assert population[2].crowding == np.inf
        assert np.isfinite(population[1].crowding)

    def test_sparser_point_has_larger_distance(self):
        population = [
            individual([0, 10]),
            individual([1, 9]),     # crowded near the left extreme
            individual([5, 5]),     # isolated middle
            individual([10, 0]),
        ]
        crowding_distance(population, [0, 1, 2, 3])
        assert population[2].crowding > population[1].crowding

    def test_small_fronts_all_infinite(self):
        population = [individual([1, 1]), individual([2, 0])]
        crowding_distance(population, [0, 1])
        assert population[0].crowding == np.inf
        assert population[1].crowding == np.inf


class TestNSGA2OnKnownProblems:
    def test_schaffer_front(self):
        """SCH: f1=x^2, f2=(x-2)^2; Pareto set is x in [0, 2]."""
        problem = FunctionalProblem(
            objectives=[lambda x: float(x[0] ** 2), lambda x: float((x[0] - 2) ** 2)],
            lower=[-1000.0],
            upper=[1000.0],
        )
        result = NSGA2(problem, NSGA2Config(population_size=60, generations=100), seed=1).run()
        xs = result.pareto_x.ravel()
        assert len(xs) >= 20
        assert np.all(xs >= -0.05)
        assert np.all(xs <= 2.05)

    def test_constrained_problem_respects_constraints(self):
        """Maximize x and y (minimize negatives) under x + y <= 10."""
        problem = FunctionalProblem(
            objectives=[lambda x: -float(x[0]), lambda x: -float(x[1])],
            lower=[0.0, 0.0],
            upper=[20.0, 20.0],
            constraints=[lambda x: float(x[0] + x[1]) - 10.0],
        )
        result = NSGA2(problem, NSGA2Config(population_size=60, generations=80), seed=2).run()
        X = result.pareto_x
        assert len(X) > 5
        sums = X.sum(axis=1)
        assert np.all(sums <= 10.0 + 1e-9)
        # The budget should be binding on the front (within one unit).
        assert sums.max() > 9.0

    def test_integer_problem_yields_integer_solutions(self):
        problem = FunctionalProblem(
            objectives=[lambda x: -float(x[0]), lambda x: -float(x[1])],
            lower=[1.0, 1.0],
            upper=[10.0, 10.0],
            constraints=[lambda x: float(x[0] + x[1]) - 8.0],
            integer=True,
        )
        result = NSGA2(problem, NSGA2Config(population_size=40, generations=60), seed=3).run()
        X = result.pareto_x
        assert np.allclose(X, np.round(X))
        assert np.all(X.sum(axis=1) <= 8.0)


class TestNSGA2Mechanics:
    def _problem(self):
        return FunctionalProblem(
            objectives=[lambda x: float(x[0] ** 2), lambda x: float((x[0] - 2) ** 2)],
            lower=[-10.0],
            upper=[10.0],
        )

    def test_deterministic_given_seed(self):
        r1 = NSGA2(self._problem(), NSGA2Config(population_size=20, generations=10), seed=5).run()
        r2 = NSGA2(self._problem(), NSGA2Config(population_size=20, generations=10), seed=5).run()
        assert np.array_equal(r1.pareto_f, r2.pareto_f)

    def test_different_seeds_differ(self):
        r1 = NSGA2(self._problem(), NSGA2Config(population_size=20, generations=10), seed=5).run()
        r2 = NSGA2(self._problem(), NSGA2Config(population_size=20, generations=10), seed=6).run()
        assert not np.array_equal(r1.pareto_f, r2.pareto_f)

    def test_evaluation_count(self):
        config = NSGA2Config(population_size=20, generations=10)
        result = NSGA2(self._problem(), config, seed=0).run()
        assert result.evaluations == 20 + 20 * 10

    def test_population_size_is_maintained(self):
        config = NSGA2Config(population_size=30, generations=5)
        result = NSGA2(self._problem(), config, seed=0).run()
        assert len(result.population) == 30

    def test_front_deduplicates_objectives(self):
        result = NSGA2(self._problem(), NSGA2Config(population_size=20, generations=30), seed=0).run()
        keys = [tuple(np.round(ind.f, 12)) for ind in result.front]
        assert len(keys) == len(set(keys))

    def test_solutions_within_bounds(self):
        result = NSGA2(self._problem(), NSGA2Config(population_size=20, generations=20), seed=0).run()
        for ind in result.population:
            assert -10.0 <= ind.x[0] <= 10.0

    def test_config_validation(self):
        with pytest.raises(OptimizationError):
            NSGA2Config(population_size=3)
        with pytest.raises(OptimizationError):
            NSGA2Config(population_size=21)  # odd
        with pytest.raises(OptimizationError):
            NSGA2Config(generations=0)
        with pytest.raises(OptimizationError):
            NSGA2Config(crossover_probability=1.5)
        with pytest.raises(OptimizationError):
            NSGA2Config(mutation_eta=0)

    def test_convergence_improves_with_generations(self):
        from repro.optimization import hypervolume

        short = NSGA2(self._problem(), NSGA2Config(population_size=24, generations=2), seed=7).run()
        long = NSGA2(self._problem(), NSGA2Config(population_size=24, generations=60), seed=7).run()
        ref = [30.0, 30.0]
        assert hypervolume(long.pareto_f, ref) >= hypervolume(short.pareto_f, ref) - 1e-6

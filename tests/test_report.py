"""Unit tests for comparison reports."""

import pytest

from repro.analysis import ComparisonReport
from repro.core.errors import ConfigurationError


@pytest.fixture
def report():
    report = ComparisonReport("Controllers", ["violations", "settling_s"])
    report.add_row("adaptive", [0.02, 240.0])
    report.add_row("fixed", [0.08, 900.0])
    report.add_row("rule", [0.12, None])
    return report


class TestComparisonReport:
    def test_best_row_minimizing(self, report):
        assert report.best_row("violations") == "adaptive"

    def test_best_row_maximizing(self, report):
        assert report.best_row("violations", minimize=False) == "rule"

    def test_best_row_skips_none(self, report):
        assert report.best_row("settling_s") == "adaptive"

    def test_value_lookup(self, report):
        assert report.value("fixed", "violations") == 0.08
        with pytest.raises(ConfigurationError):
            report.value("ghost", "violations")

    def test_render_contains_everything(self, report):
        text = report.render()
        assert "Controllers" in text
        assert "adaptive" in text
        assert "240.000" in text
        assert "-" in text  # the None cell

    def test_row_length_validated(self, report):
        with pytest.raises(ConfigurationError):
            report.add_row("bad", [1.0])

    def test_unknown_column(self, report):
        with pytest.raises(ConfigurationError):
            report.best_row("latency")

    def test_all_none_column_rejected(self):
        report = ComparisonReport("t", ["c"])
        report.add_row("a", [None])
        with pytest.raises(ConfigurationError):
            report.best_row("c")

"""Tests for multi-flow region fleets and the fleet coordinator.

Coverage: the 3-flow arbitration story (coordinator shifts per-flow
bounds under a shared-pool squeeze while every flow stays healthy),
region denials absorbed by the per-flow retry/breaker stack,
process-parallel fleet sweeps byte-identical to serial ones, and the
NSGA-II fleet share analyzer honoring budget and account-limit rows in
both its scalar and vectorized paths.
"""

import pickle

import pytest

from repro.analysis.runner import Scenario, derive_scenario_seed, run_scenarios
from repro.cloud.region import RegionLimits
from repro.cloud.storm import StormConfig
from repro.core.config import LayerControlConfig, default_adaptive_controller
from repro.core.errors import ConfigurationError, OptimizationError
from repro.core.flow import LayerKind, clickstream_flow_spec
from repro.core.fleet import (
    COORDINATED_LAYERS,
    FleetFlowSpec,
    FleetScenarioSpec,
    RegionFleetManager,
    sweep_fleet_scenarios,
)
from repro.optimization.fleet_shares import (
    FLEET_LAYER_ORDER,
    FleetShareAnalyzer,
    FlowShareSpec,
)
from repro.optimization.share_analyzer import ShareConstraint
from repro.workload.generators import SinusoidalRate


def _controls(reference=60.0):
    return {
        kind: LayerControlConfig(
            controller=default_adaptive_controller(kind, reference=reference),
            period=60,
        )
        for kind in LayerKind
    }


def _flow_specs(n=3, duration=7200, share_bounds=None):
    return [
        FleetFlowSpec(
            name=f"flow{i}",
            workload=SinusoidalRate(
                mean=1800.0 + 400.0 * i,
                amplitude=1400.0,
                period=duration,
                phase=duration // 4,
            ),
            controls=_controls(),
            share_bounds=dict(share_bounds) if share_bounds else None,
            storm=StormConfig(records_per_vm_per_second=800),
        )
        for i in range(n)
    ]


def _tight_limits():
    return RegionLimits(
        max_instances=10,
        max_total_shards=12,
        max_total_write_units=2400,
        contention_threshold=0.7,
        contention_slope=0.3,
    )


def _fleet_digest(seed, span_execution=True, jobs_marker=None):
    """A picklable fleet-run digest (module-level: sweep workers pickle
    the function, and the digest must be bytes-comparable)."""
    fleet = RegionFleetManager(
        _flow_specs(),
        limits=_tight_limits(),
        seed=seed,
        span_execution=span_execution,
        coordinate_period=300,
    )
    result = fleet.run(7200)
    return {
        "costs": {fid: repr(r.total_cost) for fid, r in result.flows.items()},
        "denials": result.denials_by_flow(),
        "grants": [
            (rec.time, {f: dict(g) for f, g in sorted(rec.grants.items())})
            for rec in result.coordinator.records
        ],
        "drops": {
            fid: (r.dropped_records, r.dropped_writes)
            for fid, r in result.flows.items()
        },
    }


class TestFleetValidation:
    def test_needs_at_least_one_flow(self):
        with pytest.raises(ConfigurationError, match="at least one flow"):
            RegionFleetManager([])

    def test_duplicate_names_rejected(self):
        specs = _flow_specs(2)
        specs[1] = FleetFlowSpec(
            name="flow0", workload=specs[1].workload, controls=_controls()
        )
        with pytest.raises(ConfigurationError, match="unique"):
            RegionFleetManager(specs)

    def test_shared_controller_instance_rejected(self):
        shared = _controls()
        specs = [
            FleetFlowSpec(
                name=f"flow{i}",
                workload=SinusoidalRate(mean=100.0, amplitude=10.0, period=3600),
                controls=shared,
            )
            for i in range(2)
        ]
        with pytest.raises(ConfigurationError, match="share a controller"):
            RegionFleetManager(specs)

    def test_empty_flow_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            FleetFlowSpec(
                name="", workload=SinusoidalRate(mean=1.0, amplitude=0.0, period=60)
            )

    def test_per_flow_seeds_are_name_derived(self):
        fleet = RegionFleetManager(_flow_specs(2), coordinate_period=None)
        for name, manager in fleet.managers.items():
            assert manager.seed == derive_scenario_seed(0, name)


class TestArbitrationUnderSqueeze:
    """The acceptance demo: 3 flows, tight account, live arbitration."""

    @pytest.fixture(scope="class")
    def run(self):
        fleet = RegionFleetManager(
            _flow_specs(),
            limits=_tight_limits(),
            seed=7,
            coordinate_period=300,
        )
        return fleet, fleet.run(7200)

    def test_runs_in_span_mode(self, run):
        fleet, _result = run
        assert fleet.engine.last_run_used_spans

    def test_coordinator_shifts_bounds(self, run):
        _fleet, result = run
        coordinator = result.coordinator
        assert coordinator.retargets > 0
        for kind in COORDINATED_LAYERS:
            trajectory = coordinator.bound_trajectory("flow2", kind)
            assert len(trajectory) == len(coordinator.records)
        # The arbitration is real: at least one layer's caps move over
        # the run rather than staying at the initial equal split.
        moved = any(
            len({cap for _t, cap in coordinator.bound_trajectory(fid, kind)}) > 1
            for fid in result.flows
            for kind in COORDINATED_LAYERS
        )
        assert moved

    def test_grants_respect_account_limits(self, run):
        fleet, result = run
        limits = fleet.region.limits
        caps = {
            LayerKind.INGESTION: limits.max_total_shards,
            LayerKind.ANALYTICS: limits.max_instances,
            LayerKind.STORAGE: limits.max_total_write_units,
        }
        floors = {
            LayerKind.INGESTION: 1,
            LayerKind.ANALYTICS: 1,
            LayerKind.STORAGE: 1,
        }
        for record in result.coordinator.records:
            for kind in COORDINATED_LAYERS:
                granted = sum(
                    grants[kind] for grants in record.grants.values() if kind in grants
                )
                # Proportional split stays within the account except for
                # per-flow floors, which can only add n_flows * floor.
                assert granted <= caps[kind] + len(result.flows) * floors[kind]

    def test_every_flow_stays_healthy(self, run):
        _fleet, result = run
        for flow_id, flow_result in result.flows.items():
            assert flow_result.invariants is not None
            assert flow_result.invariants.ok, (
                flow_id,
                flow_result.invariants.counts,
            )

    def test_flow_scoped_metric_dimensions(self, run):
        _fleet, result = run
        for flow_id, flow_result in result.flows.items():
            dims = flow_result.layer_dimensions[LayerKind.INGESTION]
            assert dims["StreamName"].startswith(f"{flow_id}-")
            assert len(flow_result.capacity_trace(LayerKind.INGESTION))

    def test_telemetry_reports_fleet_bounds(self, run):
        _fleet, result = run
        for flow_result in result.flows.values():
            telemetry = flow_result.telemetry
            assert telemetry.counter("fleet.coordinations") == 24
            assert "fleet.bound.analytics" in telemetry.gauges


class TestDenialAbsorption:
    def test_overcommitted_fleet_absorbs_denials(self):
        """With no coordinator and overcommitted bounds, flows hit the
        account limit mid-run; the denials surface as failed actuator
        attempts and breaker openings, never as crashes or violations."""
        bounds = {
            LayerKind.INGESTION: 10,
            LayerKind.ANALYTICS: 9,
            LayerKind.STORAGE: 2300,
        }
        fleet = RegionFleetManager(
            _flow_specs(share_bounds=bounds),
            limits=_tight_limits(),
            seed=7,
            coordinate_period=None,
        )
        result = fleet.run(7200)
        assert fleet.region.total_denials() > 0
        failed = 0
        for manager in fleet.managers.values():
            for loop in manager.loops.values():
                failed += loop.actuator.inner.failed_attempts
        assert failed >= fleet.region.total_denials()
        for flow_result in result.flows.values():
            assert flow_result.invariants.ok


class TestParallelFleetSweeps:
    def test_jobs_parallel_byte_identical_to_serial(self):
        scenarios = [
            Scenario(
                name=f"fleet-{seed}",
                fn=_fleet_digest,
                kwargs=dict(seed=derive_scenario_seed(11, f"fleet-{seed}")),
            )
            for seed in range(2)
        ]
        serial = run_scenarios(scenarios, jobs=1)
        parallel = run_scenarios(scenarios, jobs=2)
        for a, b in zip(serial, parallel, strict=True):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_fleet_scenario_sweep_jobs4_byte_identical_to_serial(self):
        """Regression for the pinned start method: a 3-flow fleet sweep
        at jobs=4 is byte-identical to the serial sweep — each worker
        gets a fresh interpreter (forkserver/spawn, never fork), so no
        parent-process state can leak into the scenario results."""
        import dataclasses

        def cases():
            return [
                FleetScenarioSpec(
                    name=f"fleet-case{i}",
                    flows=_flow_specs(duration=1800),
                    limits=_tight_limits(),
                    duration=1800,
                )
                for i in range(4)
            ]

        def strip_wall(card):
            return dataclasses.replace(
                card,
                wall_seconds=0.0,
                flows={
                    name: dataclasses.replace(
                        flow, wall_seconds=0.0, ticks_per_second=0.0
                    )
                    for name, flow in card.flows.items()
                },
            )

        serial = sweep_fleet_scenarios(cases(), base_seed=11, jobs=1)
        parallel = sweep_fleet_scenarios(cases(), base_seed=11, jobs=4)
        assert list(serial) == list(parallel)
        for name in serial:
            assert pickle.dumps(strip_wall(serial[name])) == pickle.dumps(
                strip_wall(parallel[name])
            )


class TestFleetShareAnalyzer:
    def _specs(self, n=2):
        flow = clickstream_flow_spec()
        return [
            FlowShareSpec(
                flow_id=f"flow{i}",
                flow=flow,
                constraints=(
                    ShareConstraint.at_least(
                        5, LayerKind.ANALYTICS, LayerKind.INGESTION
                    ),
                ),
            )
            for i in range(n)
        ]

    def test_duplicate_flow_ids_rejected(self):
        specs = self._specs(1) * 2
        with pytest.raises(OptimizationError, match="unique"):
            FleetShareAnalyzer(specs)

    def test_front_respects_budget_and_account_limits(self):
        limits = RegionLimits(
            max_instances=6, max_total_shards=8, max_total_write_units=900
        )
        analyzer = FleetShareAnalyzer(self._specs(), limits=limits)
        front = analyzer.analyze(
            budget_per_hour=2.0, population_size=40, generations=60, seed=3
        )
        assert front.solutions
        caps = {
            LayerKind.INGESTION: limits.max_total_shards,
            LayerKind.ANALYTICS: limits.max_instances,
            LayerKind.STORAGE: limits.max_total_write_units,
        }
        for solution in front.solutions:
            assert solution.hourly_cost <= 2.0 + 1e-9
            for kind in FLEET_LAYER_ORDER:
                total = sum(share[kind] for _fid, share in solution.shares)
                assert total <= caps[kind]

    def test_scalar_and_vectorized_fronts_identical(self):
        analyzer = FleetShareAnalyzer(self._specs())
        kwargs = dict(budget_per_hour=2.5, population_size=30, generations=40, seed=5)
        fast = analyzer.analyze(vectorized=True, **kwargs)
        reference = analyzer.analyze(vectorized=False, **kwargs)
        assert [repr(s) for s in fast.solutions] == [
            repr(s) for s in reference.solutions
        ]

    def test_pick_strategies(self):
        analyzer = FleetShareAnalyzer(self._specs())
        front = analyzer.analyze(
            budget_per_hour=2.5, population_size=30, generations=40, seed=5
        )
        cheapest = front.pick("cheapest")
        assert all(cheapest.hourly_cost <= s.hourly_cost for s in front.solutions)
        balanced = front.pick("balanced")
        assert balanced in front.solutions
        assert front.pick("max:flow0") in front.solutions
        with pytest.raises(OptimizationError, match="unknown flow"):
            front.pick("max:nope")
        with pytest.raises(OptimizationError, match="unknown strategy"):
            front.pick("wat")

    def test_per_flow_costs_sum_to_fleet_cost(self):
        analyzer = FleetShareAnalyzer(self._specs())
        front = analyzer.analyze(
            budget_per_hour=2.5, population_size=30, generations=40, seed=5
        )
        for solution in front.solutions:
            assert sum(
                share.hourly_cost for _fid, share in solution.shares
            ) == pytest.approx(solution.hourly_cost)

"""Unit and property tests for the gain memory."""

import pytest
from hypothesis import given, strategies as st

from repro.control import GainMemory
from repro.core.errors import ControlError


class TestBuckets:
    def test_quantizes_by_bin_width(self):
        memory = GainMemory(bin_width=10.0)
        assert memory.bucket(0.0) == 0
        assert memory.bucket(9.9) == 0
        assert memory.bucket(10.0) == 1
        assert memory.bucket(-0.1) == -1
        assert memory.bucket(-10.0) == -1

    def test_sign_distinguishes_regimes(self):
        memory = GainMemory(bin_width=10.0)
        assert memory.bucket(5.0) != memory.bucket(-5.0)


class TestRememberRecall:
    def test_roundtrip(self):
        memory = GainMemory(bin_width=10.0)
        memory.remember(25.0, 0.8)
        assert memory.recall(21.0) == 0.8  # same bucket
        assert memory.recall(35.0) is None  # different bucket

    def test_latest_value_wins(self):
        memory = GainMemory(bin_width=10.0)
        memory.remember(25.0, 0.8)
        memory.remember(27.0, 0.9)
        assert memory.recall(25.0) == 0.9

    def test_lru_eviction(self):
        memory = GainMemory(bin_width=1.0, max_bins=2)
        memory.remember(0.5, 0.1)
        memory.remember(1.5, 0.2)
        memory.remember(2.5, 0.3)  # evicts the 0-bucket
        assert memory.recall(0.5) is None
        assert memory.recall(1.5) == 0.2
        assert memory.recall(2.5) == 0.3

    def test_rewriting_refreshes_lru_position(self):
        memory = GainMemory(bin_width=1.0, max_bins=2)
        memory.remember(0.5, 0.1)
        memory.remember(1.5, 0.2)
        memory.remember(0.5, 0.15)  # refresh bucket 0
        memory.remember(2.5, 0.3)  # now evicts bucket 1
        assert memory.recall(0.5) == 0.15
        assert memory.recall(1.5) is None

    def test_recall_refreshes_lru_position(self):
        # Regression: recall() used to leave the eviction order untouched,
        # so the regime recalled every control period (the paper's rapid
        # elasticity case) could be evicted while stale regimes survived.
        memory = GainMemory(bin_width=1.0, max_bins=2)
        memory.remember(0.5, 0.1)
        memory.remember(1.5, 0.2)
        assert memory.recall(0.5) == 0.1  # bucket 0 is now the most recent
        memory.remember(2.5, 0.3)  # must evict bucket 1, not bucket 0
        assert memory.recall(0.5) == 0.1
        assert memory.recall(1.5) is None
        assert memory.recall(2.5) == 0.3

    def test_missed_recall_does_not_change_order(self):
        memory = GainMemory(bin_width=1.0, max_bins=2)
        memory.remember(0.5, 0.1)
        memory.remember(1.5, 0.2)
        assert memory.recall(9.5) is None  # miss: order unchanged
        memory.remember(2.5, 0.3)  # still evicts the oldest (bucket 0)
        assert memory.recall(0.5) is None
        assert memory.recall(1.5) == 0.2

    def test_clear_and_len(self):
        memory = GainMemory()
        memory.remember(5.0, 0.5)
        assert len(memory) == 1
        memory.clear()
        assert len(memory) == 0

    def test_snapshot_is_a_copy(self):
        memory = GainMemory()
        memory.remember(5.0, 0.5)
        snapshot = memory.snapshot()
        snapshot.clear()
        assert len(memory) == 1


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ControlError):
            GainMemory(bin_width=0)
        with pytest.raises(ControlError):
            GainMemory(max_bins=0)
        with pytest.raises(ControlError):
            GainMemory().remember(1.0, gain=0.0)


class TestProperties:
    @given(
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=1e-6, max_value=100),
    )
    def test_recall_after_remember_same_error(self, error, gain):
        memory = GainMemory(bin_width=10.0)
        memory.remember(error, gain)
        assert memory.recall(error) == gain

    @given(st.lists(
        st.tuples(
            st.floats(min_value=-1e4, max_value=1e4),
            st.floats(min_value=1e-6, max_value=10),
        ),
        max_size=50,
    ))
    def test_size_never_exceeds_max_bins(self, entries):
        memory = GainMemory(bin_width=5.0, max_bins=8)
        for error, gain in entries:
            memory.remember(error, gain)
        assert len(memory) <= 8

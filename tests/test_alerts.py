"""Unit tests for snapshot alert rules."""

import pytest

from repro.core.errors import MonitoringError
from repro.monitoring import AlertManager, AlertRule
from repro.monitoring.collector import FlowSnapshot


def snapshot(time=60, **values):
    return FlowSnapshot(time=time, values=values)


class TestAlertRule:
    def test_breached(self):
        rule = AlertRule("cpu", ">", 80.0)
        assert rule.breached(snapshot(cpu=90.0))
        assert not rule.breached(snapshot(cpu=70.0))

    def test_all_comparisons(self):
        assert AlertRule("m", ">=", 5.0).breached(snapshot(m=5.0))
        assert AlertRule("m", "<", 5.0).breached(snapshot(m=4.0))
        assert AlertRule("m", "<=", 5.0).breached(snapshot(m=5.0))

    def test_describe_uses_message_when_set(self):
        assert AlertRule("cpu", ">", 80.0, message="CPU hot").describe() == "CPU hot"
        assert "cpu > 80" in AlertRule("cpu", ">", 80.0).describe()

    def test_validation(self):
        with pytest.raises(MonitoringError):
            AlertRule("cpu", "!!", 80.0)


class TestAlertManager:
    def test_check_records_firings(self):
        manager = AlertManager()
        manager.add_rule(AlertRule("cpu", ">", 80.0))
        manager.add_rule(AlertRule("throttled", ">", 0.0))
        fired = manager.check(snapshot(time=60, cpu=90.0, throttled=0.0))
        assert len(fired) == 1
        assert fired[0].rule.label == "cpu"
        assert fired[0].value == 90.0
        assert manager.history == fired

    def test_history_accumulates_across_checks(self):
        manager = AlertManager(rules=[AlertRule("cpu", ">", 80.0)])
        manager.check(snapshot(time=60, cpu=90.0))
        manager.check(snapshot(time=120, cpu=50.0))
        manager.check(snapshot(time=180, cpu=95.0))
        assert [a.time for a in manager.history] == [60, 180]

    def test_firings_for_filters_by_label(self):
        manager = AlertManager(rules=[AlertRule("a", ">", 1.0), AlertRule("b", ">", 1.0)])
        manager.check(snapshot(time=60, a=2.0, b=2.0))
        assert len(manager.firings_for("a")) == 1

    def test_alert_str(self):
        manager = AlertManager(rules=[AlertRule("cpu", ">", 80.0)])
        fired = manager.check(snapshot(time=60, cpu=90.0))
        assert "t=60s" in str(fired[0])

"""Tests for the process-parallel scenario runner.

The contract under test: a parallel sweep is *indistinguishable* from
the serial one — same values, same order, byte-identical when pickled —
and per-scenario seeds depend only on the sweep seed and the scenario
name, never on position or worker identity.
"""

import pickle

import pytest

from repro.analysis import (
    RunnerError,
    Scenario,
    derive_scenario_seed,
    run_scenarios,
    run_scenarios_dict,
)
from repro.simulation import derive_rng


def square(value):
    return value * value


def seeded_draws(seed, n):
    """A deterministic but seed-sensitive payload (numpy array + scalar)."""
    rng = derive_rng(seed, "runner-test")
    draws = rng.normal(size=n)
    return {"sum": float(draws.sum()), "draws": draws}


def explode():
    raise ValueError("scenario failure")


def slow_sentinel(path, delay):
    """Sleep, then leave a marker file (module-level: workers pickle it)."""
    import time

    time.sleep(delay)
    with open(path, "w") as handle:
        handle.write("ran")
    return path


def scenarios_for(base_seed, count=5):
    return [
        Scenario(
            name=f"case-{i}",
            fn=seeded_draws,
            kwargs=dict(seed=derive_scenario_seed(base_seed, f"case-{i}"), n=32),
        )
        for i in range(count)
    ]


class TestSerialParallelEquivalence:
    def test_results_in_submission_order(self):
        scenarios = [Scenario(name=f"s{i}", fn=square, kwargs={"value": i}) for i in range(6)]
        assert run_scenarios(scenarios, jobs=1) == [0, 1, 4, 9, 16, 25]
        assert run_scenarios(scenarios, jobs=3) == [0, 1, 4, 9, 16, 25]

    def test_parallel_byte_identical_to_serial(self):
        # Compare result-by-result: pickling the whole list at once also
        # encodes cross-result object sharing (memo refs for interned
        # strings and dtypes), which is an identity artifact, not a value.
        scenarios = scenarios_for(base_seed=7)
        serial = run_scenarios(scenarios, jobs=1)
        parallel = run_scenarios(scenarios, jobs=2)
        for a, b in zip(serial, parallel, strict=True):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_dict_helper_keys_by_name(self):
        scenarios = [Scenario(name=f"s{i}", fn=square, kwargs={"value": i}) for i in range(3)]
        assert run_scenarios_dict(scenarios, jobs=2) == {"s0": 0, "s1": 1, "s2": 4}


class TestDerivedSeeds:
    def test_deterministic(self):
        assert derive_scenario_seed(7, "case-a") == derive_scenario_seed(7, "case-a")

    def test_name_and_base_seed_both_matter(self):
        assert derive_scenario_seed(7, "case-a") != derive_scenario_seed(7, "case-b")
        assert derive_scenario_seed(7, "case-a") != derive_scenario_seed(8, "case-a")

    def test_position_independent(self):
        """Reordering a sweep must not reshuffle any scenario's stream."""
        full = run_scenarios_dict(scenarios_for(base_seed=3, count=4))
        reordered = run_scenarios_dict(list(reversed(scenarios_for(base_seed=3, count=4))))
        for name, payload in full.items():
            assert payload["sum"] == reordered[name]["sum"]


class TestValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(RunnerError):
            run_scenarios([], jobs=0)

    def test_rejects_duplicate_names(self):
        scenarios = [
            Scenario(name="dup", fn=square, kwargs={"value": 1}),
            Scenario(name="dup", fn=square, kwargs={"value": 2}),
        ]
        with pytest.raises(RunnerError):
            run_scenarios(scenarios)

    def test_empty_sweep(self):
        assert run_scenarios([]) == []
        assert run_scenarios([], jobs=4) == []

    def test_worker_exception_propagates(self):
        scenarios = [
            Scenario(name="ok", fn=square, kwargs={"value": 2}),
            Scenario(name="boom", fn=explode),
        ]
        with pytest.raises(ValueError, match="scenario failure"):
            run_scenarios(scenarios, jobs=2)
        with pytest.raises(ValueError, match="scenario failure"):
            run_scenarios(scenarios, jobs=1)

    def test_failure_cancels_queued_scenarios(self, tmp_path):
        """Regression: a failing scenario must fail the sweep *fast* —
        queued scenarios are cancelled, not silently run to completion
        by the executor's shutdown. With 2 workers, at most the two
        in-flight sentinels can run; the other eight must be cancelled
        before they ever start."""
        scenarios = [Scenario(name="boom", fn=explode)] + [
            Scenario(
                name=f"queued-{i}",
                fn=slow_sentinel,
                kwargs=dict(path=str(tmp_path / f"queued-{i}"), delay=0.2),
            )
            for i in range(10)
        ]
        with pytest.raises(ValueError, match="scenario failure"):
            run_scenarios(scenarios, jobs=2)
        ran = sorted(p.name for p in tmp_path.iterdir())
        assert len(ran) <= 2, f"queued scenarios were not cancelled: {ran}"


class TestStartMethodPin:
    """The pool's start method is pinned, never inherited from the
    platform default — ``fork`` would hand workers a copy of the
    parent's mutable module state, which is exactly the kind of
    accidental coupling the deterministic runner exists to prevent."""

    def test_start_method_is_pinned_and_never_fork(self):
        from repro.analysis.runner import START_METHOD

        assert START_METHOD in ("forkserver", "spawn")
        assert START_METHOD != "fork"

    def test_pool_context_uses_pinned_method(self):
        from repro.analysis.runner import START_METHOD, pool_context

        assert pool_context().get_start_method() == START_METHOD

"""Unit tests for the flow model."""

import pytest

from repro.core import FlowSpec, LayerKind, LayerSpec, clickstream_flow_spec
from repro.core.errors import ConfigurationError


class TestLayerKind:
    def test_paper_codes(self):
        assert LayerKind.INGESTION.code == "I"
        assert LayerKind.ANALYTICS.code == "A"
        assert LayerKind.STORAGE.code == "S"


class TestLayerSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LayerSpec(LayerKind.INGESTION, "", "kinesis.shard", "Shards")
        with pytest.raises(ConfigurationError):
            LayerSpec(LayerKind.INGESTION, "Kinesis", "", "Shards")
        with pytest.raises(ConfigurationError):
            LayerSpec(LayerKind.INGESTION, "Kinesis", "kinesis.shard", "Shards",
                      min_units=5, max_units=2)


class TestFlowSpec:
    def test_clickstream_reference_flow(self):
        flow = clickstream_flow_spec()
        assert flow.ingestion.platform == "Amazon Kinesis"
        assert flow.analytics.resource == "ec2.m4.large"
        assert flow.storage.resource_label == "WCU"

    def test_layer_lookup(self):
        flow = clickstream_flow_spec()
        assert flow.layer(LayerKind.ANALYTICS) is flow.analytics

    def test_requires_all_three_layers_in_order(self):
        ingestion = LayerSpec(LayerKind.INGESTION, "K", "kinesis.shard", "Shards")
        analytics = LayerSpec(LayerKind.ANALYTICS, "S", "ec2.m4.large", "VMs")
        storage = LayerSpec(LayerKind.STORAGE, "D", "dynamodb.wcu", "WCU")
        with pytest.raises(ConfigurationError):
            FlowSpec("bad", (ingestion, analytics))  # missing storage
        with pytest.raises(ConfigurationError):
            FlowSpec("bad", (storage, analytics, ingestion))  # wrong order
        with pytest.raises(ConfigurationError):
            FlowSpec("bad", (ingestion, ingestion, storage))  # duplicate kind

    def test_name_required(self):
        with pytest.raises(ConfigurationError):
            clickstream_flow_spec("")

"""Unit tests for cost accounting."""

import pytest

from repro.analysis import CostSummary, capacity_trace_cost, savings_vs_peak, static_peak_cost
from repro.cloud.pricing import PriceBook, ResourcePrice
from repro.core.errors import ConfigurationError
from repro.workload import Trace


@pytest.fixture
def book():
    return PriceBook({
        "vm": ResourcePrice("vm", hourly=1.0),
        "shard": ResourcePrice("shard", hourly=0.5),
    })


class TestCapacityTraceCost:
    def test_flat_trace(self, book):
        trace = Trace("c", [(0, 2.0), (3600, 2.0)])
        # 2 VMs for 1 h + final sample held for the median interval (1 h).
        assert capacity_trace_cost(trace, "vm", book) == pytest.approx(4.0)

    def test_scaling_down_costs_less(self, book):
        flat = Trace("flat", [(0, 4.0), (1800, 4.0), (3600, 4.0)])
        elastic = Trace("elastic", [(0, 4.0), (1800, 1.0), (3600, 1.0)])
        assert capacity_trace_cost(elastic, "vm", book) < capacity_trace_cost(flat, "vm", book)


class TestStaticPeakCost:
    def test_uses_peak_over_span(self, book):
        trace = Trace("c", [(0, 1.0), (1800, 8.0), (3600, 1.0)])
        # Peak 8 units held for the full 1 h span.
        assert static_peak_cost(trace, "vm", book) == pytest.approx(12.0)  # 8 units x 1.5 h effective span

    def test_needs_two_samples(self, book):
        with pytest.raises(ConfigurationError):
            static_peak_cost(Trace("c", [(0, 1.0)]), "vm", book)


class TestSavings:
    def test_fraction(self):
        assert savings_vs_peak(35.0, 100.0) == pytest.approx(0.65)

    def test_peak_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            savings_vs_peak(1.0, 0.0)


class TestCostSummary:
    def test_from_traces(self, book):
        traces = {
            "vm": Trace("vm", [(0, 4.0), (1800, 2.0), (3600, 2.0)]),
            "shard": Trace("shard", [(0, 2.0), (1800, 2.0), (3600, 2.0)]),
        }
        summary = CostSummary.from_traces(traces, book)
        assert summary.per_resource["vm"] == pytest.approx((4 + 2 + 2) * 0.5 * 1.0)
        # Peak 4 units over the same 1.5 h effective span.
        assert summary.peak_per_resource["vm"] == pytest.approx(6.0)
        assert summary.total == pytest.approx(summary.per_resource["vm"] + summary.per_resource["shard"])
        assert 0.0 < summary.savings < 1.0

    def test_empty_rejected(self, book):
        with pytest.raises(ConfigurationError):
            CostSummary.from_traces({}, book)

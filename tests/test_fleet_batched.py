"""Batched-vs-sequential fleet execution bit-equivalence.

The fleet execution contract (DESIGN.md): with ``batch_execution=True``
a :class:`RegionFleetManager` runs every flow through one
:class:`~repro.core.fleet_exec.FleetSpanExecutor` component, and every
flow's metrics, costs and events must be **bit-identical** to the
sequential per-pipeline execution — under chaos faults, region
denials, coordination, on both the exact and fast workload paths, and
against the per-tick reference loop. Equality is asserted on reprs
(metric values), exact cost-meter internals, and per-flow event lists,
so a single ULP drift anywhere fails loudly.

Also here: the :class:`RegionContext` capacity-sum memoization
regression tests (satellite of the same PR) — the memo must invalidate
on every committed-capacity change and must *not* recompute between
changes.
"""

import pytest

from repro.chaos import ChaosSchedule, FaultKind, FaultSpec
from repro.cloud.region import RegionContext, RegionLimits
from repro.cloud.storm import StormConfig
from repro.core.config import LayerControlConfig, default_adaptive_controller
from repro.core.fleet import FleetFlowSpec, RegionFleetManager
from repro.core.flow import LayerKind
from repro.workload.generators import SinusoidalRate

DURATION = 1800


def _controls():
    return {
        kind: LayerControlConfig(
            controller=default_adaptive_controller(kind), period=60
        )
        for kind in LayerKind
    }


def _build(
    n,
    *,
    exact,
    batch,
    span=True,
    coordinate=300,
    chaos=None,
    tight=False,
    seed=7,
):
    """A small region fleet; ``chaos`` lands on the first flow only."""
    if tight:
        # Undersized account: flows fight for headroom and take real
        # RegionCapacityError denials mid-run.
        limits = RegionLimits(
            max_instances=2 * n,
            max_total_shards=2 * n,
            max_total_write_units=400 * n,
            contention_threshold=0.7,
            contention_slope=0.3,
        )
        # Oversubscribed grants — each flow may ask for the *whole*
        # account, so the region (not the per-flow bounded actuators)
        # is what actually arbitrates, and denials become reachable.
        share_bounds = {
            LayerKind.INGESTION: limits.max_total_shards,
            LayerKind.ANALYTICS: limits.max_instances,
            LayerKind.STORAGE: limits.max_total_write_units,
        }
    else:
        share_bounds = None
    flows = [
        FleetFlowSpec(
            name=f"flow{i:02d}",
            workload=SinusoidalRate(
                mean=1500.0 + 200.0 * i,
                amplitude=900.0,
                period=DURATION,
                phase=(DURATION // n) * i,
            ),
            controls=_controls(),
            chaos=chaos if i == 0 else None,
            storm=StormConfig(records_per_vm_per_second=800),
            share_bounds=share_bounds,
        )
        for i in range(n)
    ]
    if not tight:
        limits = RegionLimits(
            max_instances=6 * n,
            max_total_shards=6 * n,
            max_total_write_units=2000 * n,
            contention_threshold=0.85,
            contention_slope=0.3,
        )
    return RegionFleetManager(
        flows,
        limits=limits,
        seed=seed,
        exact=exact,
        batch_execution=batch,
        span_execution=span,
        coordinate_period=coordinate,
    )


def _flow_digests(fleet, result):
    """Per-flow (series, costs, events, drops) — everything observable."""
    digests = {}
    for name, flow_result in result.flows.items():
        store = fleet.managers[name].cloudwatch
        store.flush_pending()
        series = {}
        for key in sorted(store._series):
            s = store._series[key]
            series[key] = (
                s.times.tolist(),
                repr(s.values.tolist()),
            )
        costs = sorted(
            (kind, meter._unit_seconds, meter._usage_volume, meter.total_cost)
            for kind, meter in flow_result.cost_meters.items()
        )
        events = None
        if flow_result.recorder is not None:
            events = [
                (e.time, e.kind, repr(sorted(e.payload.items())))
                for e in flow_result.recorder.events
            ]
        violations = None
        if flow_result.invariants is not None:
            # Violation *totals*, not check counts: span mode checks at
            # boundaries, the per-tick loop checks every tick, so the
            # number of checks legitimately differs between modes.
            violations = flow_result.invariants.total_violations
        digests[name] = {
            "series": series,
            "costs": repr(costs),
            "events": events,
            "violations": violations,
            "dropped_records": flow_result.dropped_records,
            "dropped_writes": flow_result.dropped_writes,
        }
    return digests


def _assert_equivalent(n, *, exact, coordinate=300, chaos=None, tight=False):
    batched = _build(
        n, exact=exact, batch=True, coordinate=coordinate, chaos=chaos, tight=tight
    )
    result_b = batched.run(DURATION)
    sequential = _build(
        n, exact=exact, batch=False, coordinate=coordinate, chaos=chaos, tight=tight
    )
    result_s = sequential.run(DURATION)

    da, db = _flow_digests(batched, result_b), _flow_digests(sequential, result_s)
    assert sorted(da) == sorted(db)
    for name in da:
        a, b = da[name], db[name]
        assert sorted(a["series"]) == sorted(b["series"]), name
        for key in a["series"]:
            assert a["series"][key] == b["series"][key], (name, key)
        assert a["costs"] == b["costs"], name
        assert a["events"] == b["events"], name
        assert a["violations"] == b["violations"], name
        assert a["dropped_records"] == b["dropped_records"], name
        assert a["dropped_writes"] == b["dropped_writes"], name
    assert dict(batched.region.denial_counts) == dict(sequential.region.denial_counts)
    return batched, sequential


class TestBatchedEquivalence:
    def test_fast_two_flows(self):
        _assert_equivalent(2, exact=False)

    def test_fast_four_flows(self):
        _assert_equivalent(4, exact=False)

    def test_exact_two_flows(self):
        _assert_equivalent(2, exact=True)

    def test_coordinator_off(self):
        _assert_equivalent(2, exact=False, coordinate=None)

    def test_mid_run_region_denials(self):
        batched, _ = _assert_equivalent(3, exact=False, tight=True)
        # The tight account must actually deny something, or this case
        # degenerates into the healthy-fleet test.
        assert batched.region.total_denials() > 0

    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_each_chaos_fault_kind(self, kind):
        intensities = {
            FaultKind.RESHARD_STALL: 3.0,
            FaultKind.SHARD_BROWNOUT: 0.4,
            FaultKind.WORKER_CRASH: 1.0,
            FaultKind.THROTTLE_STORM: 0.5,
            FaultKind.METRIC_DELAY: 120.0,
        }
        spec = FaultSpec(
            kind,
            start=400 if kind is FaultKind.WORKER_CRASH else 300,
            duration=0 if kind is FaultKind.WORKER_CRASH else 600,
            intensity=intensities.get(kind, 0.0),
        )
        chaos = ChaosSchedule(faults=(spec,), seed=11)
        _assert_equivalent(2, exact=False, chaos=chaos)

    def test_span_sequential_matches_per_tick(self):
        """Closes the chain: batched == seq-span == per-tick reference."""
        span = _build(2, exact=False, batch=False, span=True)
        result_span = span.run(DURATION)
        tick = _build(2, exact=False, batch=False, span=False)
        result_tick = tick.run(DURATION)
        ds, dt = _flow_digests(span, result_span), _flow_digests(tick, result_tick)
        for name in ds:
            assert ds[name]["series"] == dt[name]["series"], name
            assert ds[name]["costs"] == dt[name]["costs"], name
            assert ds[name]["events"] == dt[name]["events"], name

    def test_batched_is_the_default(self):
        fleet = _build(2, exact=False, batch=True)
        assert fleet.batch_execution is True
        # Per-tick mode cannot batch: the flag degrades, it never lies.
        tick = _build(2, exact=False, batch=True, span=False)
        assert tick.batch_execution is False


class _StubFleet:
    def __init__(self, count):
        self.count = count
        self.calls = 0

    def provisioned_count(self, now):
        self.calls += 1
        return self.count


class TestRegionSumMemo:
    def test_memo_avoids_recompute_between_changes(self):
        region = RegionContext(limits=RegionLimits())
        stub = _StubFleet(5)
        region.register_fleet("f0", stub)
        assert region.instances_in_use(now=10) == 5
        calls = stub.calls
        assert region.instances_in_use(now=20) == 5
        assert stub.calls == calls  # served from the version memo

    def test_memo_invalidates_on_capacity_change(self):
        region = RegionContext(limits=RegionLimits())
        stub = _StubFleet(5)
        region.register_fleet("f0", stub)
        assert region.instances_in_use(now=10) == 5
        stub.count = 9
        # Without a version bump the memo (correctly) still serves the
        # committed value as of the last change...
        assert region.instances_in_use(now=11) == 5
        # ...and the services' capacity-change hook invalidates it.
        region.note_capacity_change()
        assert region.instances_in_use(now=12) == 9

    def test_real_scale_up_is_visible_immediately(self):
        """End to end: an admitted scale-up must not be served stale —
        a second flow asking right after must see the new commitment."""
        fleet = _build(2, exact=False, batch=True)
        region = fleet.region
        manager = next(iter(fleet.managers.values()))
        ec2 = manager.cluster.fleet
        before = region.instances_in_use(now=0)
        ec2.set_desired(before_count := ec2.provisioned_count(0), now=0)
        ec2.set_desired(before_count + 1, now=0)
        assert region.instances_in_use(now=0) == before + 1

"""Unit tests for the control loop plumbing."""

import pytest

from repro.control import CallbackActuator, ControlLoop, Controller, Sensor
from repro.core.errors import ControlError


class StubSensor(Sensor):
    def __init__(self, values):
        self.values = list(values)

    def measure(self, now):
        return self.values.pop(0) if self.values else None


class GainOne(Controller):
    """u' = u + (y - 60): a unit-gain integral controller for tests."""

    def compute(self, u_current, y_measured, now):
        return u_current + (y_measured - 60.0)

    def reset(self):
        pass


class Plant:
    """Integer capacity store used as the actuator target."""

    def __init__(self, capacity=10.0):
        self.capacity = capacity

    def actuator(self, minimum=1.0, maximum=100.0):
        return CallbackActuator(
            getter=lambda now: self.capacity,
            setter=lambda value, now: setattr(self, "capacity", value),
            minimum=minimum,
            maximum=maximum,
        )


class TestCallbackActuator:
    def test_clamps_and_rounds(self):
        plant = Plant()
        actuator = plant.actuator(minimum=2, maximum=20)
        assert actuator.apply(25.7, 0) == 20.0
        assert actuator.apply(0.2, 0) == 2.0
        assert actuator.apply(7.6, 0) == 8.0
        assert plant.capacity == 8.0

    def test_non_integer_mode(self):
        plant = Plant()
        actuator = CallbackActuator(
            getter=lambda now: plant.capacity,
            setter=lambda value, now: setattr(plant, "capacity", value),
            integer=False,
        )
        assert actuator.apply(7.6, 0) == 7.6

    def test_validation(self):
        with pytest.raises(ControlError):
            CallbackActuator(lambda n: 0, lambda v, n: None, minimum=5, maximum=1)


class TestControlLoop:
    def test_skips_when_no_sensor_data(self):
        plant = Plant()
        loop = ControlLoop("l", StubSensor([]), GainOne(), plant.actuator())
        assert loop.step(60) is None
        assert loop.records == []

    def test_records_each_invocation(self):
        plant = Plant(capacity=10.0)
        loop = ControlLoop("l", StubSensor([80.0, 50.0]), GainOne(), plant.actuator())
        record = loop.step(60)
        assert record.measurement == 80.0
        assert record.capacity_before == 10.0
        assert record.capacity_requested == 30.0
        assert record.capacity_applied == 30.0
        loop.step(120)
        assert len(loop.records) == 2
        assert loop.actions_taken == 2

    def test_integrator_accumulates_subunit_steps(self):
        """Small gain x error must not deadlock on integer actuators."""

        class TinyGain(Controller):
            def compute(self, u, y, now):
                return u - 0.3  # persistent scale-down pressure

            def reset(self):
                pass

        plant = Plant(capacity=10.0)
        loop = ControlLoop("l", StubSensor([50.0] * 5), TinyGain(), plant.actuator())
        for k in range(5):
            loop.step(60 * (k + 1))
        # 5 steps of -0.3 = -1.5: capacity must have dropped by >= 1.
        assert plant.capacity <= 9.0

    def test_integrator_resyncs_after_clamp(self):
        """Anti-windup: the integrator must not run away past actuator limits."""

        class BigGain(Controller):
            def compute(self, u, y, now):
                return u + 1000.0

            def reset(self):
                pass

        plant = Plant(capacity=10.0)
        loop = ControlLoop("l", StubSensor([90.0] * 3), BigGain(), plant.actuator(maximum=20))
        loop.step(60)
        assert plant.capacity == 20.0
        # Next step resyncs to the applied 20 rather than integrating from 1010.
        record = loop.step(120)
        assert record.capacity_before == 20.0

    def test_acted_flag(self):
        plant = Plant(capacity=10.0)
        loop = ControlLoop("l", StubSensor([60.0]), GainOne(), plant.actuator())
        record = loop.step(60)
        assert record.capacity_applied == record.capacity_before
        assert not record.acted
        assert loop.actions_taken == 0

    def test_period_validation(self):
        with pytest.raises(ControlError):
            ControlLoop("l", StubSensor([]), GainOne(), Plant().actuator(), period=0)

"""Unit tests for the cross-platform metric collector."""

import pytest

from repro.cloud import SimCloudWatch
from repro.core.errors import MonitoringError
from repro.monitoring import MetricCollector, MetricSpec


@pytest.fixture
def cw():
    cw = SimCloudWatch()
    for t in range(10, 130, 10):
        cw.put_metric_data("AWS/Kinesis", "IncomingRecords", float(t), t)
        cw.put_metric_data("Custom/Storm", "CPUUtilization", t / 2.0, t)
    return cw


@pytest.fixture
def collector(cw):
    collector = MetricCollector(cw, window=60)
    collector.add_metric("in.records", "AWS/Kinesis", "IncomingRecords", "Sum")
    collector.add_metric("cpu", "Custom/Storm", "CPUUtilization")
    return collector


class TestCollect:
    def test_snapshot_spans_namespaces(self, collector):
        snapshot = collector.collect(120)
        # Sum over (60, 120]: 70+80+...+120.
        assert snapshot["in.records"] == sum(range(70, 130, 10))
        assert snapshot["cpu"] == pytest.approx(sum(range(70, 130, 10)) / 2 / 6)

    def test_missing_data_reads_zero(self, cw):
        collector = MetricCollector(cw, window=60)
        collector.add_metric("ghost", "NS", "NotThere")
        assert collector.collect(60)["ghost"] == 0.0

    def test_history_accumulates(self, collector):
        collector.collect(60)
        collector.collect(120)
        assert len(collector.snapshots) == 2
        assert [s.time for s in collector.snapshots] == [60, 120]

    def test_series_returns_trace(self, collector):
        collector.collect(60)
        collector.collect(120)
        trace = collector.series("cpu")
        assert trace.times == [60, 120]

    def test_series_unknown_label(self, collector):
        with pytest.raises(MonitoringError):
            collector.series("nope")

    def test_snapshot_unknown_label(self, collector):
        snapshot = collector.collect(60)
        with pytest.raises(MonitoringError):
            snapshot["nope"]


class TestRegistration:
    def test_duplicate_label_rejected(self, collector):
        with pytest.raises(MonitoringError):
            collector.add_metric("cpu", "Custom/Storm", "CPUUtilization")

    def test_empty_label_rejected(self):
        with pytest.raises(MonitoringError):
            MetricSpec("", "NS", "M")

    def test_collect_without_specs_rejected(self, cw):
        with pytest.raises(MonitoringError):
            MetricCollector(cw).collect(60)

    def test_window_validation(self, cw):
        with pytest.raises(MonitoringError):
            MetricCollector(cw, window=0)

    def test_labels_order_preserved(self, collector):
        assert collector.labels == ["in.records", "cpu"]

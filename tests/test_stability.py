"""Unit tests for the stability analysis helpers."""

import pytest

from repro.control import (
    estimate_process_gain,
    is_stable,
    max_stable_gain,
    suggest_gain_bounds,
)
from repro.core.errors import ControlError


class TestStabilityBound:
    def test_max_stable_gain(self):
        assert max_stable_gain(-0.5) == pytest.approx(4.0)
        assert max_stable_gain(2.0) == pytest.approx(1.0)

    def test_zero_process_gain_rejected(self):
        with pytest.raises(ControlError):
            max_stable_gain(0.0)

    def test_is_stable_inside_bound(self):
        # b = -0.5: stable for 0 < l < 4.
        assert is_stable(1.0, -0.5)
        assert is_stable(3.9, -0.5)
        assert not is_stable(4.0, -0.5)
        assert not is_stable(10.0, -0.5)

    def test_positive_process_gain_never_stable(self):
        # Wrong loop sign: adding capacity increases the sensed value.
        assert not is_stable(1.0, 0.5)

    def test_gain_must_be_positive(self):
        with pytest.raises(ControlError):
            is_stable(0.0, -0.5)

    def test_suggest_bounds(self):
        l_min, l_max = suggest_gain_bounds(-0.5, safety=0.5)
        assert l_max == pytest.approx(2.0)
        assert l_min == pytest.approx(0.02)
        assert is_stable(l_max, -0.5)

    def test_suggest_bounds_validation(self):
        with pytest.raises(ControlError):
            suggest_gain_bounds(-0.5, safety=1.0)


class TestEstimateProcessGain:
    def test_recovers_linear_plant(self):
        # y responds to u with sensitivity -3.
        u = [10, 11, 11, 13, 12, 15, 14]
        y = [60.0]
        for k in range(1, len(u)):
            y.append(y[-1] - 3.0 * (u[k] - u[k - 1]))
        assert estimate_process_gain(u, y) == pytest.approx(-3.0)

    def test_ignores_static_steps(self):
        u = [10, 10, 10, 11, 11, 12, 12, 13]
        y = [60, 59, 61, 58, 58, 55, 55, 52]
        assert estimate_process_gain(u, y) == pytest.approx(-3.0)

    def test_needs_enough_moving_steps(self):
        with pytest.raises(ControlError):
            estimate_process_gain([10, 10, 10, 11], [60, 60, 60, 57])

    def test_length_mismatch(self):
        with pytest.raises(ControlError):
            estimate_process_gain([1, 2], [1, 2, 3])

"""Property tests: scenario serialisation is lossless.

For any valid scenario — random workload trees, random chaos
schedules, random knobs — ``parse(serialize(s)) == s``, byte-for-byte
through JSON. And invalid specs never half-load: they raise
``ConfigurationError`` with the offending field named in the message.
"""

import json

from hypothesis import given, settings, strategies as st

import pytest

from repro.chaos.schedule import ChaosSchedule, FaultKind, FaultSpec
from repro.core.errors import ConfigurationError
from repro.scenarios import Scenario, SLOTargets
from repro.scenarios.spec import PatternSpec

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
positive_rates = st.floats(min_value=0.1, max_value=1e6, allow_nan=False,
                           allow_infinity=False)
times = st.integers(min_value=0, max_value=10**6)


@st.composite
def step_params(draw):
    at = draw(times)
    until = draw(st.one_of(st.none(), st.integers(min_value=at + 1, max_value=at + 10**6)))
    return {"base": draw(rates), "level": draw(rates), "at": at, "until": until}


@st.composite
def ramp_params(draw):
    t0 = draw(times)
    return {
        "start_rate": draw(rates), "end_rate": draw(rates),
        "t0": t0, "t1": draw(st.integers(min_value=t0 + 1, max_value=t0 + 10**6)),
    }


@st.composite
def trace_points(draw):
    deltas = draw(st.lists(st.integers(min_value=1, max_value=3600),
                           min_size=1, max_size=8))
    start = draw(times)
    points, t = [], start
    for delta, value in zip(deltas, draw(st.lists(rates, min_size=len(deltas),
                                                  max_size=len(deltas)))):
        points.append([t, value])
        t += delta
    return points


leaf_specs = st.one_of(
    st.builds(lambda v: PatternSpec("constant", {"value": v}), rates),
    st.builds(lambda p: PatternSpec("step", p), step_params()),
    st.builds(lambda p: PatternSpec("ramp", p), ramp_params()),
    st.builds(
        lambda m, a, period, phase: PatternSpec(
            "sinusoid", {"mean": m, "amplitude": a, "period": period, "phase": phase}),
        rates, rates, st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=-10**6, max_value=10**6)),
    st.builds(
        lambda m, a, h: PatternSpec(
            "diurnal", {"mean": m, "amplitude": a, "peak_hour": h}),
        rates, rates, st.floats(min_value=0.0, max_value=24.0)),
    st.builds(
        lambda peak, at, rise, decay: PatternSpec(
            "flash_crowd", {"peak": peak, "at": at,
                            "rise_seconds": rise, "decay_seconds": decay}),
        rates, times, st.integers(min_value=1, max_value=7200),
        st.integers(min_value=1, max_value=7200)),
    st.builds(lambda pts, s: PatternSpec("trace", {"points": pts, "scale": s}),
              trace_points(), positive_rates),
)


def _wrap(children_strategy):
    return st.one_of(
        st.builds(
            lambda c, f: PatternSpec("weekly", {"day_factors": f}, inner=(c,)),
            children_strategy, st.lists(rates, min_size=7, max_size=7)),
        st.builds(
            lambda c, bph, mult, dur: PatternSpec(
                "bursty", {"bursts_per_hour": bph, "multiplier": mult,
                           "duration_seconds": dur},
                inner=(c,)),
            children_strategy, st.floats(min_value=0.0, max_value=50.0),
            st.floats(min_value=1.0, max_value=20.0),
            st.integers(min_value=1, max_value=3600)),
        st.builds(
            lambda c, sigma, interval: PatternSpec(
                "noisy", {"sigma": sigma, "interval": interval}, inner=(c,)),
            children_strategy, st.floats(min_value=0.0, max_value=2.0),
            st.integers(min_value=1, max_value=3600)),
        st.builds(
            lambda cs: PatternSpec("sum", inner=tuple(cs)),
            st.lists(children_strategy, min_size=1, max_size=3)),
        st.builds(
            lambda cs: PatternSpec("product", inner=tuple(cs)),
            st.lists(children_strategy, min_size=1, max_size=3)),
    )


pattern_specs = st.recursive(leaf_specs, _wrap, max_leaves=6)

_POINT_KINDS = frozenset({FaultKind.WORKER_CRASH})
_FRACTION_KINDS = frozenset({FaultKind.SHARD_BROWNOUT, FaultKind.THROTTLE_STORM})


@st.composite
def fault_specs(draw, max_start):
    kind = draw(st.sampled_from(sorted(FaultKind, key=lambda k: k.value)))
    start = draw(st.integers(min_value=0, max_value=max_start))
    duration = 0 if kind in _POINT_KINDS else draw(
        st.integers(min_value=1, max_value=3600))
    if kind in _FRACTION_KINDS:
        intensity = draw(st.floats(min_value=0.01, max_value=0.99,
                                   allow_nan=False))
    else:
        intensity = draw(st.floats(min_value=1.0, max_value=50.0, allow_nan=False))
    return FaultSpec(kind, start=start, duration=duration, intensity=intensity)


@st.composite
def chaos_schedules(draw, max_start):
    faults = draw(st.lists(fault_specs(max_start=max_start), min_size=1, max_size=4))
    # Same-kind windows must not overlap; keep one fault per kind.
    unique = {f.kind: f for f in faults}
    return ChaosSchedule(faults=tuple(unique.values()),
                         seed=draw(st.integers(min_value=0, max_value=2**31)))


@st.composite
def scenarios(draw):
    duration = draw(st.integers(min_value=600, max_value=10**6))
    return Scenario(
        name=draw(st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
            min_size=1, max_size=30)),
        description=draw(st.text(max_size=60)),
        workload=draw(pattern_specs),
        duration=duration,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        controller=draw(st.sampled_from(["adaptive", "fixed", "quasi", "rule"])),
        reference=draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False)),
        control_period=draw(st.integers(min_value=1, max_value=600)),
        shards=draw(st.integers(min_value=1, max_value=64)),
        vms=draw(st.integers(min_value=1, max_value=64)),
        write_units=draw(st.integers(min_value=1, max_value=10**5)),
        slo=SLOTargets(
            utilization_band=draw(st.floats(min_value=1.0, max_value=100.0,
                                            allow_nan=False)),
            max_violation_pct=draw(st.floats(min_value=0.0, max_value=100.0,
                                             allow_nan=False)),
        ),
        budget_usd_per_hour=draw(st.one_of(
            st.none(), st.floats(min_value=0.01, max_value=1e4, allow_nan=False))),
        chaos=draw(st.one_of(st.none(), chaos_schedules(max_start=duration - 1))),
        key_skew=draw(st.floats(min_value=0.0, max_value=4.0, allow_nan=False)),
        exact=draw(st.booleans()),
    )


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(spec=pattern_specs)
    def test_pattern_round_trips(self, spec):
        assert PatternSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=200, deadline=None)
    @given(spec=pattern_specs)
    def test_pattern_round_trips_through_json(self, spec):
        clone = PatternSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios())
    def test_scenario_round_trips(self, scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios())
    def test_serialisation_is_stable(self, scenario):
        """serialize(parse(serialize(s))) is byte-identical — the JSON
        form is canonical, so committed specs never churn on re-save."""
        once = scenario.to_json()
        assert Scenario.from_json(once).to_json() == once


# ----------------------------------------------------------------------
# Invalid specs raise, naming the offending field
# ----------------------------------------------------------------------
class TestInvalidSpecs:
    @settings(max_examples=100, deadline=None)
    @given(spec=pattern_specs, data=st.data())
    def test_unknown_param_names_the_field(self, spec, data):
        junk = data.draw(st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12,
        ).filter(lambda s: s not in spec.to_dict()))
        payload = spec.to_dict()
        payload[junk] = 1.0
        with pytest.raises(ConfigurationError) as err:
            PatternSpec.from_dict(payload)
        assert junk in str(err.value)

    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios(), value=st.one_of(
        st.floats(allow_nan=True).filter(
            lambda v: v != v or v in (float("inf"), float("-inf")) or v <= 0),
        st.text(max_size=5),
    ))
    def test_corrupt_duration_names_the_field(self, scenario, value):
        payload = json.loads(scenario.to_json())
        payload["duration"] = None if value != value else value
        with pytest.raises(ConfigurationError) as err:
            Scenario.from_dict(payload)
        assert "scenario.duration" in str(err.value)

    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios())
    def test_corrupt_workload_kind_names_the_field(self, scenario):
        payload = json.loads(scenario.to_json())
        payload["workload"]["kind"] = "mystery"
        with pytest.raises(ConfigurationError) as err:
            Scenario.from_dict(payload)
        assert "workload.kind" in str(err.value)

"""Unit tests for Flower's adaptive-gain controller (Eq. 6-7)."""

import pytest

from repro.control import AdaptiveGainConfig, AdaptiveGainController
from repro.core.errors import ControlError


def make(reference=60.0, gamma=0.01, l_min=0.1, l_max=1.0, **kwargs):
    return AdaptiveGainController(
        AdaptiveGainConfig(
            reference=reference, gamma=gamma, l_min=l_min, l_max=l_max, **kwargs
        )
    )


class TestEquation6:
    def test_positive_error_raises_capacity(self):
        controller = make(use_memory=False)
        u_next = controller.compute(10.0, 80.0, now=0)
        # Gain adapted first: l = 0.1 + 0.01*20 = 0.3; u' = 10 + 0.3*20.
        assert u_next == pytest.approx(16.0)

    def test_negative_error_lowers_capacity(self):
        controller = make(use_memory=False)
        u_next = controller.compute(10.0, 40.0, now=0)
        # l stays at l_min (adaptation clamps below); u' = 10 + 0.1*(-20).
        assert u_next == pytest.approx(8.0)

    def test_zero_error_is_noop(self):
        controller = make(use_memory=False)
        assert controller.compute(10.0, 60.0, now=0) == 10.0


class TestEquation7:
    def test_gain_grows_with_sustained_error(self):
        controller = make(use_memory=False, gamma=0.01, l_min=0.1, l_max=1.0)
        gains = []
        for k in range(5):
            controller.compute(10.0, 80.0, now=60 * k)
            gains.append(controller.gain)
        assert gains == sorted(gains)
        assert gains[-1] > gains[0]

    def test_gain_clamped_at_l_max(self):
        controller = make(use_memory=False, gamma=1.0, l_max=0.5)
        controller.compute(10.0, 100.0, now=0)
        assert controller.gain == 0.5

    def test_gain_clamped_at_l_min(self):
        controller = make(use_memory=False, gamma=1.0, l_min=0.2)
        controller.compute(10.0, 20.0, now=0)
        assert controller.gain == 0.2

    def test_l_init_used_as_start(self):
        controller = make(use_memory=False, l_init=0.7)
        assert controller.gain == 0.7


class TestDeadband:
    def test_small_errors_ignored(self):
        controller = make(use_memory=False, deadband=5.0)
        assert controller.compute(10.0, 63.0, now=0) == 10.0
        assert controller.gain == 0.1  # no adaptation either

    def test_errors_beyond_deadband_act(self):
        controller = make(use_memory=False, deadband=5.0)
        assert controller.compute(10.0, 70.0, now=0) != 10.0


class TestGainMemoryIntegration:
    def test_memory_warm_starts_on_regime_reentry(self):
        controller = make(use_memory=True, gamma=0.02, l_min=0.1, l_max=2.0,
                          memory_bin_width=10.0)
        # Sustained +30 error: gain climbs well above l_min.
        for k in range(10):
            controller.compute(10.0, 90.0, now=60 * k)
        learned = controller.gain
        assert learned > 0.5
        # Error returns to the reference regime, gain decays to l_min.
        for k in range(10, 40):
            controller.compute(10.0, 55.0, now=60 * k)
        assert controller.gain == pytest.approx(0.1)
        # Second identical shock: the first step already uses the
        # remembered high gain instead of re-adapting from l_min.
        controller.compute(10.0, 90.0, now=60 * 50)
        assert controller.gain >= learned - 0.1

    def test_without_memory_gain_restarts_low(self):
        controller = make(use_memory=False, gamma=0.02, l_min=0.1, l_max=2.0)
        for k in range(10):
            controller.compute(10.0, 90.0, now=60 * k)
        for k in range(10, 40):
            controller.compute(10.0, 55.0, now=60 * k)
        controller.compute(10.0, 90.0, now=60 * 50)
        # One adaptation step above l_min only.
        assert controller.gain == pytest.approx(0.1 + 0.02 * 30)

    def test_reset_clears_state(self):
        controller = make(use_memory=True)
        controller.compute(10.0, 90.0, now=0)
        controller.reset()
        assert controller.gain == 0.1
        assert len(controller.memory) == 0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ControlError):
            AdaptiveGainConfig(reference=60, gamma=0.0, l_min=0.1, l_max=1.0)
        with pytest.raises(ControlError):
            AdaptiveGainConfig(reference=60, gamma=0.1, l_min=0.0, l_max=1.0)
        with pytest.raises(ControlError):
            AdaptiveGainConfig(reference=60, gamma=0.1, l_min=1.0, l_max=0.5)
        with pytest.raises(ControlError):
            AdaptiveGainConfig(reference=60, gamma=0.1, l_min=0.1, l_max=1.0, l_init=2.0)
        with pytest.raises(ControlError):
            AdaptiveGainConfig(reference=60, gamma=0.1, l_min=0.1, l_max=1.0, deadband=-1)

"""Tests for the flight recorder: event bus, decision audit log,
tick profiler and the JSONL trace format."""

import json
import math

import pytest

from repro import FlowBuilder
from repro.control import (
    AdaptiveGainConfig,
    AdaptiveGainController,
    BoundedActuator,
    CallbackActuator,
    ControlLoop,
    Sensor,
)
from repro.core.errors import MonitoringError
from repro.core.flow import LayerKind
from repro.observability import (
    ControlDecision,
    DecisionLog,
    Event,
    EventBus,
    FlightRecorder,
    TickProfiler,
    read_jsonl,
    write_jsonl,
)
from repro.observability.profiler import HISTOGRAM_BOUNDS
from repro.simulation.clock import SimClock
from repro.simulation.engine import SimulationEngine
from repro.workload import ConstantRate


class TestEventBus:
    def test_publish_assigns_strictly_increasing_seq(self):
        bus = EventBus()
        a = bus.publish(5, "ingestion", "scale.up")
        b = bus.publish(5, "storage", "scale.down")
        assert (a.seq, b.seq) == (0, 1)
        assert len(bus) == 2

    def test_payload_is_copied(self):
        bus = EventBus()
        payload = {"from": 1}
        event = bus.publish(0, "flow", "scale.up", payload)
        payload["from"] = 99
        assert event.payload == {"from": 1}

    def test_validation(self):
        bus = EventBus()
        with pytest.raises(MonitoringError):
            bus.publish(-1, "flow", "scale.up")
        with pytest.raises(MonitoringError):
            bus.publish(0, "flow", "")

    def test_of_kind_matches_exact_and_prefix(self):
        bus = EventBus()
        bus.publish(0, "ingestion", "reshard")
        bus.publish(1, "ingestion", "reshard.complete")
        bus.publish(2, "ingestion", "throttle")
        assert [e.kind for e in bus.of_kind("reshard")] == ["reshard", "reshard.complete"]
        assert [e.kind for e in bus.of_kind("throttle")] == ["throttle"]

    def test_for_layer_and_counts(self):
        bus = EventBus()
        bus.publish(0, "ingestion", "throttle")
        bus.publish(1, "storage", "throttle")
        bus.publish(2, "storage", "throttle")
        assert len(bus.for_layer("storage")) == 2
        assert bus.counts() == {"throttle": 3}

    def test_subscribers_see_each_publish(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(0, "flow", "scale.up")
        bus.publish(1, "flow", "scale.down")
        assert [e.kind for e in seen] == ["scale.up", "scale.down"]

    def test_describe_is_one_line(self):
        event = Event(time=60, layer="ingestion", kind="scale.up", payload={"from": 2, "to": 4})
        text = event.describe()
        assert "\n" not in text
        assert "[t=60s]" in text and "from=2" in text

    def test_ordering_under_staggered_engine_tasks(self):
        """Two periodic tasks at different phases publish interleaved
        events: times must be non-decreasing, seq strictly increasing."""
        bus = EventBus()
        engine = SimulationEngine(clock=SimClock())
        engine.every(10, lambda now: bus.publish(now, "a", "tick.a"), name="a")
        engine.every(15, lambda now: bus.publish(now, "b", "tick.b"), phase=5, name="b")
        engine.run(60)
        events = bus.events
        assert len(events) > 6
        times = [e.time for e in events]
        assert times == sorted(times)
        seqs = [e.seq for e in events]
        assert seqs == list(range(len(events)))
        # Both publishers actually interleaved.
        assert {e.layer for e in events} == {"a", "b"}


class TestDecisionLog:
    def _decision(self, time=60, **overrides):
        base = dict(
            time=time,
            loop="ingestion",
            sensed=83.0,
            state_before=2.0,
            capacity_before=2.0,
            raw_command=3.15,
            applied_command=3.0,
            reference=60.0,
            error=23.0,
            gain=0.05,
        )
        base.update(overrides)
        return ControlDecision(**base)

    def test_reconstruct_replays_eq6(self):
        decision = self._decision()
        assert decision.reconstruct_command() == pytest.approx(2.0 + 0.05 * 23.0)
        assert decision.reconstruct_command() == pytest.approx(decision.raw_command)

    def test_reconstruct_none_without_gain(self):
        assert self._decision(gain=None).reconstruct_command() is None

    def test_clamped_and_acted_flags(self):
        decision = self._decision()
        assert decision.clamped  # 3.0 != 3.15
        assert decision.acted  # 3.0 != 2.0
        untouched = self._decision(raw_command=3.0, applied_command=3.0, capacity_before=3.0)
        assert not untouched.clamped and not untouched.acted

    def test_record_enforces_time_order(self):
        log = DecisionLog()
        log.record(self._decision(time=120))
        log.record(self._decision(time=120))  # same time is fine
        with pytest.raises(MonitoringError):
            log.record(self._decision(time=60))

    def test_filters_and_summary(self):
        log = DecisionLog()
        log.record(self._decision(time=60, loop="ingestion"))
        log.record(self._decision(time=60, loop="storage", raw_command=3.0,
                                  applied_command=3.0))
        log.record(self._decision(time=120, loop="ingestion"))
        assert log.loops() == ["ingestion", "storage"]
        assert len(log.for_loop("ingestion")) == 2
        assert len(log.clamps()) == 2
        rows = log.summary_rows()
        assert rows[0][:4] == ["ingestion", "2", "2", "2"]


class _FixedSensor(Sensor):
    def __init__(self, value):
        self.value = value

    def measure(self, now):
        return self.value


class TestDecisionCapture:
    """The audit log reconstructs a bounded-gain clamp end to end."""

    def _loop(self, cap=4.0, instrument=True):
        controller = AdaptiveGainController(
            AdaptiveGainConfig(reference=60.0, gamma=0.01, l_min=0.05, l_max=0.5,
                               use_memory=False)
        )
        plant = {"capacity": 2.0}
        inner = CallbackActuator(
            getter=lambda now: plant["capacity"],
            setter=lambda value, now: plant.__setitem__("capacity", value),
            minimum=1.0,
            maximum=100.0,
        )
        recorder = FlightRecorder()
        actuator = BoundedActuator(inner, cap=cap)
        if instrument:
            actuator.instrument(recorder.bus, "ingestion")
        loop = ControlLoop(
            name="ingestion",
            sensor=_FixedSensor(95.0),  # large error: command overshoots the cap
            controller=controller,
            actuator=actuator,
            period=60,
            decision_log=recorder.decisions,
            event_bus=recorder.bus,
        )
        return loop, recorder

    def test_bounded_clamp_is_reconstructable(self):
        loop, recorder = self._loop(cap=4.0)
        for now in (60, 120, 180, 240):
            loop.step(now)
        clamps = [d for d in recorder.decisions if d.clamped and d.applied_command == 4.0]
        assert clamps, "expected the share cap to clamp at least one command"
        decision = clamps[0]
        # Eq. 6 replays exactly from the recorded inputs.
        assert decision.reconstruct_command() == pytest.approx(decision.raw_command)
        assert decision.raw_command > 4.0
        assert decision.error == pytest.approx(35.0)
        assert decision.sensed == pytest.approx(95.0)
        # The clamp and the scale-up both hit the event bus.
        assert recorder.bus.of_kind("share.clamp")
        assert any(e.payload["to"] == 4.0 for e in recorder.bus.of_kind("scale.up"))

    def test_no_hooks_records_nothing(self):
        loop, recorder = self._loop(instrument=False)
        loop.decision_log = None
        loop.event_bus = None
        loop.step(60)
        assert len(recorder.decisions) == 0
        assert len(recorder.bus) == 0


class _SpinComponent:
    def on_tick(self, clock):
        math.sqrt(float(clock.now))


class TestTickProfiler:
    def test_engine_totals_are_consistent(self):
        profiler = TickProfiler()
        engine = SimulationEngine(clock=SimClock(), profiler=profiler)
        engine.add_component(_SpinComponent())
        engine.every(10, lambda now: None, name="noop")
        engine.run(100)
        assert profiler.tick_count == 100
        assert profiler.component_calls["_SpinComponent"] == 100
        assert profiler.task_calls["noop"] == 10
        # Per-tick timing wraps the component/task timings.
        assert profiler.instrumented_seconds <= profiler.tick_seconds_total
        assert profiler.tick_seconds_max <= profiler.tick_seconds_total
        assert sum(profiler.histogram) == profiler.tick_count

    def test_histogram_bucketing(self):
        profiler = TickProfiler()
        profiler.record_tick(1e-6)  # below first bound
        profiler.record_tick(1.0)  # overflow
        assert profiler.histogram[0] == 1
        assert profiler.histogram[-1] == 1
        assert len(profiler.histogram) == len(HISTOGRAM_BOUNDS) + 1

    def test_dict_round_trip(self):
        profiler = TickProfiler()
        profiler.record_component("pipeline", 0.25)
        profiler.record_task("control", 0.05)
        profiler.record_tick(0.3)
        clone = TickProfiler.from_dict(profiler.as_dict())
        assert clone.as_dict() == profiler.as_dict()

    def test_summary_mentions_hot_spots(self):
        profiler = TickProfiler()
        profiler.record_component("pipeline", 0.25)
        profiler.record_tick(0.3)
        text = profiler.summary()
        assert "pipeline" in text and "ticks: 1" in text


class TestJsonlRoundTrip:
    def test_events_decisions_profile_round_trip(self, tmp_path):
        recorder = FlightRecorder(profile=True)
        recorder.bus.publish(60, "ingestion", "scale.up", {"from": 2, "to": 4})
        recorder.bus.publish(60, "storage", "throttle", {"records": 10})
        recorder.decisions.record(
            ControlDecision(
                time=60, loop="ingestion", sensed=83.0, state_before=2.0,
                capacity_before=2.0, raw_command=3.15, applied_command=3.0,
                reference=60.0, error=23.0, gain=0.05,
            )
        )
        recorder.profiler.record_tick(0.001)
        path = tmp_path / "trace.jsonl"
        lines = recorder.to_jsonl(path)
        assert lines == 4  # 2 events + 1 decision + 1 profile

        data = read_jsonl(path)
        assert data["events"] == recorder.bus.events
        assert data["decisions"] == recorder.decisions.decisions
        assert data["profile"]["ticks"] == 1

    def test_rows_are_time_ordered(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [Event(time=120, layer="a", kind="k", seq=0)]
        decisions = [
            ControlDecision(time=60, loop="l", sensed=1.0, state_before=1.0,
                            capacity_before=1.0, raw_command=1.0, applied_command=1.0)
        ]
        write_jsonl(path, events=events, decisions=decisions)
        times = [json.loads(line)["time"] for line in path.read_text().splitlines()]
        assert times == [60, 120]

    def test_bad_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(MonitoringError):
            read_jsonl(path)
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(MonitoringError):
            read_jsonl(path)


class TestManagerIntegration:
    def _run(self, profile=False, duration=900):
        recorder = FlightRecorder(profile=profile)
        manager = (
            FlowBuilder("observed", seed=3)
            .ingestion(shards=1)
            .analytics(vms=1)
            .storage(write_units=100)
            .workload(ConstantRate(1500))
            .control_all(style="adaptive", reference=60.0, period=60)
            .observe(recorder=recorder)
            .build()
        )
        return manager.run(duration), recorder

    def test_observed_flow_records_all_layers(self):
        result, recorder = self._run()
        assert result.recorder is recorder
        loops = set(recorder.decisions.loops())
        assert loops == {"ingestion", "analytics", "storage"}
        # The under-provisioned flow must have scaled somewhere, and the
        # decision carries the full Eq. 6 tuple.
        scaled = [
            d for d in recorder.decisions
            if d.acted and d.gain is not None and d.error is not None
        ]
        assert scaled
        assert scaled[0].reconstruct_command() == pytest.approx(scaled[0].raw_command)
        assert recorder.bus.of_kind("scale")
        # Dashboard grows the recorder sections.
        rendered = result.dashboard()
        assert "recent events" in rendered
        assert "control decisions" in rendered

    def test_profile_flag_times_the_pipeline(self):
        result, recorder = self._run(profile=True)
        assert recorder.profiler is not None
        assert recorder.profiler.tick_count == result.duration_seconds
        assert "_FlowPipeline" in recorder.profiler.component_seconds
        assert recorder.profiler.instrumented_seconds <= recorder.profiler.tick_seconds_total

    def test_unobserved_flow_has_no_recorder(self):
        manager = (
            FlowBuilder("plain", seed=3)
            .workload(ConstantRate(500))
            .control_all(style="adaptive")
            .build()
        )
        result = manager.run(300)
        assert result.recorder is None
        assert manager.engine.profiler is None

    def test_observe_defaults_build_a_recorder(self):
        manager = (
            FlowBuilder("auto", seed=3)
            .workload(ConstantRate(500))
            .control_all(style="adaptive")
            .observe()
            .build()
        )
        assert manager.recorder is not None
        assert manager.recorder.profiler is None

    def test_fault_injection_is_published(self):
        from repro.simulation.faults import ScheduledVMFaults

        recorder = FlightRecorder()
        manager = (
            FlowBuilder("faulty", seed=3)
            .analytics(vms=3)
            .workload(ConstantRate(500))
            .observe(recorder=recorder)
            .build()
        )
        faults = ScheduledVMFaults(fleet=manager.fleet, kill_times=[120],
                                   bus=recorder.bus)
        manager.engine.add_component(faults)
        manager.run(300)
        injected = recorder.bus.of_kind("fault.inject")
        assert len(injected) == 1
        assert injected[0].payload["instance"] == faults.events[0].instance_id

    def test_summary_is_renderable(self):
        _, recorder = self._run(profile=True)
        text = recorder.summary()
        assert "flight recorder:" in text
        assert "events by kind:" in text
        assert "decisions by loop" in text
        assert "tick profile:" in text

    def test_share_bound_clamp_recorded_in_flow(self):
        recorder = FlightRecorder()
        manager = (
            FlowBuilder("capped", seed=3)
            .ingestion(shards=1)
            .analytics(vms=1)
            .storage(write_units=100)
            .workload(ConstantRate(2500))
            .control_all(style="adaptive", reference=60.0, period=60)
            .share_bounds({LayerKind.INGESTION: 2,
                           LayerKind.ANALYTICS: 2,
                           LayerKind.STORAGE: 150})
            .observe(recorder=recorder)
            .build()
        )
        manager.run(1200)
        clamp_events = recorder.bus.of_kind("share.clamp")
        assert clamp_events, "overloaded capped flow should hit its share bound"
        assert recorder.decisions.clamps()

"""Unit tests for the fluent flow builder."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.cloud.dynamodb import DynamoDBConfig
from repro.cloud.pricing import PriceBook, ResourcePrice
from repro.control import RuleBasedController
from repro.core.errors import ConfigurationError
from repro.workload import ConstantRate


class TestBuilder:
    def test_requires_workload(self):
        with pytest.raises(ConfigurationError, match="workload"):
            FlowBuilder().build()

    def test_minimal_build(self):
        manager = FlowBuilder("f").workload(ConstantRate(100)).build()
        assert manager.flow.name == "f"
        assert manager.loops == {}

    def test_layer_capacities_propagate(self):
        manager = (
            FlowBuilder()
            .ingestion(shards=4)
            .analytics(vms=3)
            .storage(write_units=500)
            .workload(ConstantRate(100))
            .build()
        )
        assert manager.stream.shard_count(0) == 4
        assert manager.fleet.running_count(0) == 3
        assert manager.table.write_capacity(0) == 500

    def test_control_all_attaches_three_loops(self):
        manager = (
            FlowBuilder().workload(ConstantRate(100)).control_all(style="adaptive").build()
        )
        assert set(manager.loops) == set(LayerKind)

    def test_control_single_layer_with_style(self):
        manager = (
            FlowBuilder()
            .workload(ConstantRate(100))
            .control(LayerKind.STORAGE, style="rule", period=120)
            .build()
        )
        loop = manager.loops[LayerKind.STORAGE]
        assert isinstance(loop.controller, RuleBasedController)
        assert loop.period == 120

    def test_control_with_explicit_controller(self):
        from repro.control import RuleBasedConfig

        controller = RuleBasedController(
            RuleBasedConfig(upper_threshold=80, lower_threshold=20)
        )
        manager = (
            FlowBuilder()
            .workload(ConstantRate(100))
            .control(LayerKind.ANALYTICS, controller=controller)
            .build()
        )
        assert manager.loops[LayerKind.ANALYTICS].controller is controller

    def test_uncontrolled_removes_loop(self):
        manager = (
            FlowBuilder()
            .workload(ConstantRate(100))
            .control_all()
            .uncontrolled(LayerKind.INGESTION)
            .build()
        )
        assert LayerKind.INGESTION not in manager.loops
        assert LayerKind.ANALYTICS in manager.loops

    def test_service_configs_propagate(self):
        manager = (
            FlowBuilder()
            .storage(write_units=100, config=DynamoDBConfig(update_delay_seconds=99))
            .workload(ConstantRate(100))
            .build()
        )
        assert manager.table.config.update_delay_seconds == 99

    def test_pricing_override(self):
        book = PriceBook({
            "kinesis.shard": ResourcePrice("kinesis.shard", hourly=9.0),
            "ec2.m4.large": ResourcePrice("ec2.m4.large", hourly=9.0),
            "dynamodb.wcu": ResourcePrice("dynamodb.wcu", hourly=9.0),
            "dynamodb.rcu": ResourcePrice("dynamodb.rcu", hourly=9.0),
        })
        manager = FlowBuilder().pricing(book).workload(ConstantRate(100)).build()
        assert manager.price_book.price("kinesis.shard").hourly == 9.0

    def test_tick_setting(self):
        manager = FlowBuilder().tick(5).workload(ConstantRate(100)).build()
        assert manager.engine.clock.tick_seconds == 5

    def test_fluent_chaining_returns_self(self):
        builder = FlowBuilder()
        assert builder.ingestion() is builder
        assert builder.analytics() is builder
        assert builder.storage() is builder
        assert builder.workload(ConstantRate(1)) is builder
        assert builder.control_all() is builder

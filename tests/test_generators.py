"""Unit tests for rate patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.simulation import derive_rng
from repro.workload import (
    BurstyRate,
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    NoisyRate,
    RampRate,
    RateGrid,
    ReplayRate,
    SinusoidalRate,
    StepRate,
    Trace,
    WeeklyRate,
)


def _fig2_style_stack(horizon=7200, seed=11):
    """A deep composite stack like the benchmarks use."""
    base = SinusoidalRate(mean=800.0, amplitude=300.0, period=horizon)
    crowd = base + FlashCrowdRate(peak=400, at=horizon // 3)
    bursty = BurstyRate(crowd, derive_rng(seed, "bursts"), horizon=horizon)
    return NoisyRate(bursty, derive_rng(seed, "noise"), horizon=horizon, sigma=0.1)


class TestConstantAndStep:
    def test_constant(self):
        assert ConstantRate(5.0).rate(0) == 5.0
        assert ConstantRate(5.0).rate(10_000) == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(-1)

    def test_step_up_and_back(self):
        step = StepRate(base=10, level=100, at=60, until=120)
        assert step.rate(59) == 10
        assert step.rate(60) == 100
        assert step.rate(119) == 100
        assert step.rate(120) == 10

    def test_step_without_until_is_permanent(self):
        step = StepRate(base=10, level=100, at=60)
        assert step.rate(10_000) == 100

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            StepRate(base=10, level=100, at=60, until=60)


class TestRamp:
    def test_linear_interpolation(self):
        ramp = RampRate(0, 100, t0=0, t1=100)
        assert ramp.rate(0) == 0
        assert ramp.rate(50) == 50
        assert ramp.rate(100) == 100
        assert ramp.rate(200) == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RampRate(0, 10, t0=10, t1=10)


class TestSinusoidal:
    def test_mean_and_extremes(self):
        wave = SinusoidalRate(mean=100, amplitude=50, period=3600)
        assert wave.rate(0) == pytest.approx(100)
        assert wave.rate(900) == pytest.approx(150)
        assert wave.rate(2700) == pytest.approx(50)

    def test_floored_at_zero(self):
        wave = SinusoidalRate(mean=10, amplitude=100, period=3600)
        assert wave.rate(2700) == 0.0

    def test_diurnal_peaks_at_peak_hour(self):
        diurnal = DiurnalRate(mean=100, amplitude=50, peak_hour=20)
        peak = diurnal.rate(20 * 3600)
        trough = diurnal.rate(8 * 3600)
        assert peak == pytest.approx(150)
        assert trough == pytest.approx(50)


class TestFlashCrowd:
    def test_rise_and_decay(self):
        crowd = FlashCrowdRate(peak=1000, at=100, rise_seconds=10, decay_seconds=100)
        assert crowd.rate(99) == 0.0
        assert crowd.rate(105) == pytest.approx(500)
        assert crowd.rate(110) == pytest.approx(1000)
        # One decay constant later: peak / e.
        assert crowd.rate(210) == pytest.approx(1000 / 2.71828, rel=1e-3)

    def test_additive_composition(self):
        total = ConstantRate(100) + FlashCrowdRate(peak=900, at=0, rise_seconds=1)
        assert total.rate(1) == pytest.approx(1000)


class TestBursty:
    def test_deterministic_given_seed(self):
        rng1 = derive_rng(3, "bursts")
        rng2 = derive_rng(3, "bursts")
        a = BurstyRate(ConstantRate(10), rng1, horizon=36000, bursts_per_hour=2)
        b = BurstyRate(ConstantRate(10), rng2, horizon=36000, bursts_per_hour=2)
        assert a.burst_starts == b.burst_starts

    def test_burst_multiplies_rate(self):
        rng = derive_rng(5, "bursts")
        pattern = BurstyRate(
            ConstantRate(10), rng, horizon=36000, bursts_per_hour=3,
            multiplier=4.0, duration_seconds=60,
        )
        assert pattern.burst_starts, "expected at least one burst at this rate"
        start = pattern.burst_starts[0]
        assert pattern.rate(start) == 40.0
        assert pattern.rate(start + 60) in (10.0, 40.0)  # next burst may overlap

    def test_zero_bursts_per_hour(self):
        pattern = BurstyRate(ConstantRate(10), derive_rng(1, "b"), horizon=3600, bursts_per_hour=0)
        assert pattern.burst_starts == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyRate(ConstantRate(1), derive_rng(0, "x"), horizon=0)


class TestNoisy:
    def test_pure_function_of_time(self):
        pattern = NoisyRate(ConstantRate(100), derive_rng(1, "n"), horizon=3600, sigma=0.2)
        assert pattern.rate(500) == pattern.rate(500)

    def test_noise_is_multiplicative_and_unbiased(self):
        pattern = NoisyRate(ConstantRate(100), derive_rng(1, "n"), horizon=360000, sigma=0.1)
        samples = [pattern.rate(t) for t in range(0, 360000, 60)]
        assert all(s > 0 for s in samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(100, rel=0.05)

    def test_zero_sigma_is_identity(self):
        pattern = NoisyRate(ConstantRate(42), derive_rng(1, "n"), horizon=3600, sigma=0.0)
        assert pattern.rate(100) == 42.0


class TestComposite:
    def test_sum_and_product(self):
        total = CompositeRate([ConstantRate(2), ConstantRate(3)], mode="sum")
        assert total.rate(0) == 5.0
        product = CompositeRate([ConstantRate(2), ConstantRate(3)], mode="product")
        assert product.rate(0) == 6.0

    def test_operators(self):
        assert (ConstantRate(2) * ConstantRate(3)).rate(0) == 6.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompositeRate([], mode="sum")
        with pytest.raises(ConfigurationError):
            CompositeRate([ConstantRate(1)], mode="average")


class TestReplay:
    def test_replays_trace_step_hold(self):
        trace = Trace("w", [(0, 10.0), (60, 20.0)])
        replay = ReplayRate(trace)
        assert replay.rate(30) == 10.0
        assert replay.rate(61) == 20.0

    def test_before_first_point_holds_first_value(self):
        trace = Trace("w", [(100, 10.0)])
        assert ReplayRate(trace).rate(0) == 10.0

    def test_rejects_empty_trace(self):
        with pytest.raises(ConfigurationError):
            ReplayRate(Trace("empty"))


class TestSample:
    def test_sample_grid(self):
        trace = ConstantRate(5).sample(0, 300, step=60)
        assert trace.times == [0, 60, 120, 180, 240]
        assert all(v == 5.0 for v in trace.values)


class TestGridEvaluation:
    """The values()/RateGrid contract the batched manager path rests on:
    grid evaluation equals per-tick rate(t) calls exactly."""

    def test_values_equals_per_tick_rate_calls(self):
        pattern = _fig2_style_stack()
        grid = pattern.values(0, 3600, step=1)
        loop = [pattern.rate(t) for t in range(0, 3600)]
        assert grid.tolist() == loop  # bit-exact, not approx

    def test_values_matches_sample_grid(self):
        pattern = _fig2_style_stack()
        trace = pattern.sample(100, 1000, step=7)
        assert pattern.values(100, 1000, step=7).tolist() == trace.values

    def test_values_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(1).values(0, 10, step=0)

    def test_rate_grid_is_bit_identical_across_chunks(self):
        pattern = _fig2_style_stack()
        grid = RateGrid(pattern, step=1, chunk=64)  # force many refills
        for t in range(0, 1000):
            assert grid.rate_at(t) == pattern.rate(t)

    def test_rate_grid_off_raster_falls_back(self):
        pattern = _fig2_style_stack()
        grid = RateGrid(pattern, step=10, chunk=8)
        assert grid.rate_at(0) == pattern.rate(0)
        assert grid.rate_at(13) == pattern.rate(13)  # off the 10 s raster
        assert grid.rate_at(20) == pattern.rate(20)

    def test_rate_grid_handles_backwards_jumps(self):
        pattern = _fig2_style_stack()
        grid = RateGrid(pattern, step=1, chunk=16)
        assert grid.rate_at(500) == pattern.rate(500)
        assert grid.rate_at(3) == pattern.rate(3)

    def test_rate_grid_validation(self):
        with pytest.raises(ConfigurationError):
            RateGrid(ConstantRate(1), step=0)
        with pytest.raises(ConfigurationError):
            RateGrid(ConstantRate(1), step=1, chunk=0)

    def test_vectorized_overrides_match_loop(self):
        """Every pattern with a vectorized values() override stays
        elementwise bit-identical to the per-tick rate(t) loop."""
        patterns = [
            ConstantRate(5.0),
            StepRate(base=10, level=100, at=600, until=1200),
            StepRate(base=10, level=100, at=600),
            RampRate(5, 50, t0=300, t1=900),
            WeeklyRate(ConstantRate(7.0), day_factors=[1, 0.5, 2, 1, 1, 0.25, 3]),
            BurstyRate(
                SinusoidalRate(mean=100, amplitude=40, period=3600),
                derive_rng(3, "bursts"), horizon=7200, bursts_per_hour=4.0,
            ),
            NoisyRate(
                RampRate(10, 200, t0=0, t1=7200),
                derive_rng(3, "noise"), horizon=7200, sigma=0.3,
            ),
            CompositeRate([ConstantRate(3), RampRate(0, 10, 0, 1000)], mode="sum"),
            CompositeRate([ConstantRate(3), StepRate(base=1, level=2, at=500)], mode="product"),
        ]
        for pattern in patterns:
            got = pattern.values(0, 2000, step=7)
            want = [pattern.rate(t) for t in range(0, 2000, 7)]
            assert got.tolist() == want, type(pattern).__name__

    def test_weekly_values_across_day_boundaries(self):
        """The day-factor index must wrap mod 7 exactly like rate()."""
        weekly = WeeklyRate(
            SinusoidalRate(mean=50, amplitude=20, period=86400),
            day_factors=[1.0, 0.5, 2.0, 1.0, 1.5, 0.25, 3.0],
        )
        got = weekly.values(0, 9 * 86400, step=3571)  # off-raster step crosses every boundary
        want = [weekly.rate(t) for t in range(0, 9 * 86400, 3571)]
        assert got.tolist() == want


class TestProperties:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_rates_are_never_negative(self, t):
        patterns = [
            SinusoidalRate(mean=10, amplitude=100, period=3600),
            RampRate(5, 50, 0, 100),
            FlashCrowdRate(peak=10, at=100),
            DiurnalRate(mean=10, amplitude=30),
        ]
        for pattern in patterns:
            assert pattern.rate(t) >= 0.0

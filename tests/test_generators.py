"""Unit tests for rate patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.simulation import derive_rng
from repro.workload import (
    BurstyRate,
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    NoisyRate,
    RampRate,
    ReplayRate,
    SinusoidalRate,
    StepRate,
    Trace,
)


class TestConstantAndStep:
    def test_constant(self):
        assert ConstantRate(5.0).rate(0) == 5.0
        assert ConstantRate(5.0).rate(10_000) == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(-1)

    def test_step_up_and_back(self):
        step = StepRate(base=10, level=100, at=60, until=120)
        assert step.rate(59) == 10
        assert step.rate(60) == 100
        assert step.rate(119) == 100
        assert step.rate(120) == 10

    def test_step_without_until_is_permanent(self):
        step = StepRate(base=10, level=100, at=60)
        assert step.rate(10_000) == 100

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            StepRate(base=10, level=100, at=60, until=60)


class TestRamp:
    def test_linear_interpolation(self):
        ramp = RampRate(0, 100, t0=0, t1=100)
        assert ramp.rate(0) == 0
        assert ramp.rate(50) == 50
        assert ramp.rate(100) == 100
        assert ramp.rate(200) == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RampRate(0, 10, t0=10, t1=10)


class TestSinusoidal:
    def test_mean_and_extremes(self):
        wave = SinusoidalRate(mean=100, amplitude=50, period=3600)
        assert wave.rate(0) == pytest.approx(100)
        assert wave.rate(900) == pytest.approx(150)
        assert wave.rate(2700) == pytest.approx(50)

    def test_floored_at_zero(self):
        wave = SinusoidalRate(mean=10, amplitude=100, period=3600)
        assert wave.rate(2700) == 0.0

    def test_diurnal_peaks_at_peak_hour(self):
        diurnal = DiurnalRate(mean=100, amplitude=50, peak_hour=20)
        peak = diurnal.rate(20 * 3600)
        trough = diurnal.rate(8 * 3600)
        assert peak == pytest.approx(150)
        assert trough == pytest.approx(50)


class TestFlashCrowd:
    def test_rise_and_decay(self):
        crowd = FlashCrowdRate(peak=1000, at=100, rise_seconds=10, decay_seconds=100)
        assert crowd.rate(99) == 0.0
        assert crowd.rate(105) == pytest.approx(500)
        assert crowd.rate(110) == pytest.approx(1000)
        # One decay constant later: peak / e.
        assert crowd.rate(210) == pytest.approx(1000 / 2.71828, rel=1e-3)

    def test_additive_composition(self):
        total = ConstantRate(100) + FlashCrowdRate(peak=900, at=0, rise_seconds=1)
        assert total.rate(1) == pytest.approx(1000)


class TestBursty:
    def test_deterministic_given_seed(self):
        rng1 = derive_rng(3, "bursts")
        rng2 = derive_rng(3, "bursts")
        a = BurstyRate(ConstantRate(10), rng1, horizon=36000, bursts_per_hour=2)
        b = BurstyRate(ConstantRate(10), rng2, horizon=36000, bursts_per_hour=2)
        assert a.burst_starts == b.burst_starts

    def test_burst_multiplies_rate(self):
        rng = derive_rng(5, "bursts")
        pattern = BurstyRate(
            ConstantRate(10), rng, horizon=36000, bursts_per_hour=3,
            multiplier=4.0, duration_seconds=60,
        )
        assert pattern.burst_starts, "expected at least one burst at this rate"
        start = pattern.burst_starts[0]
        assert pattern.rate(start) == 40.0
        assert pattern.rate(start + 60) in (10.0, 40.0)  # next burst may overlap

    def test_zero_bursts_per_hour(self):
        pattern = BurstyRate(ConstantRate(10), derive_rng(1, "b"), horizon=3600, bursts_per_hour=0)
        assert pattern.burst_starts == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyRate(ConstantRate(1), derive_rng(0, "x"), horizon=0)


class TestNoisy:
    def test_pure_function_of_time(self):
        pattern = NoisyRate(ConstantRate(100), derive_rng(1, "n"), horizon=3600, sigma=0.2)
        assert pattern.rate(500) == pattern.rate(500)

    def test_noise_is_multiplicative_and_unbiased(self):
        pattern = NoisyRate(ConstantRate(100), derive_rng(1, "n"), horizon=360000, sigma=0.1)
        samples = [pattern.rate(t) for t in range(0, 360000, 60)]
        assert all(s > 0 for s in samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(100, rel=0.05)

    def test_zero_sigma_is_identity(self):
        pattern = NoisyRate(ConstantRate(42), derive_rng(1, "n"), horizon=3600, sigma=0.0)
        assert pattern.rate(100) == 42.0


class TestComposite:
    def test_sum_and_product(self):
        total = CompositeRate([ConstantRate(2), ConstantRate(3)], mode="sum")
        assert total.rate(0) == 5.0
        product = CompositeRate([ConstantRate(2), ConstantRate(3)], mode="product")
        assert product.rate(0) == 6.0

    def test_operators(self):
        assert (ConstantRate(2) * ConstantRate(3)).rate(0) == 6.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompositeRate([], mode="sum")
        with pytest.raises(ConfigurationError):
            CompositeRate([ConstantRate(1)], mode="average")


class TestReplay:
    def test_replays_trace_step_hold(self):
        trace = Trace("w", [(0, 10.0), (60, 20.0)])
        replay = ReplayRate(trace)
        assert replay.rate(30) == 10.0
        assert replay.rate(61) == 20.0

    def test_before_first_point_holds_first_value(self):
        trace = Trace("w", [(100, 10.0)])
        assert ReplayRate(trace).rate(0) == 10.0

    def test_rejects_empty_trace(self):
        with pytest.raises(ConfigurationError):
            ReplayRate(Trace("empty"))


class TestSample:
    def test_sample_grid(self):
        trace = ConstantRate(5).sample(0, 300, step=60)
        assert trace.times == [0, 60, 120, 180, 240]
        assert all(v == 5.0 for v in trace.values)


class TestProperties:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_rates_are_never_negative(self, t):
        patterns = [
            SinusoidalRate(mean=10, amplitude=100, period=3600),
            RampRate(5, 50, 0, 100),
            FlashCrowdRate(peak=10, at=100),
            DiurnalRate(mean=10, amplitude=30),
        ]
        for pattern in patterns:
            assert pattern.rate(t) >= 0.0

"""Tests for prediction/confidence intervals and the iterator-age metric."""

import numpy as np
import pytest

from repro.cloud import SimCloudWatch, SimKinesisStream
from repro.core.errors import RegressionError
from repro.dependency import fit_linear
from repro.simulation import SimClock


class TestPredictionIntervals:
    @pytest.fixture(scope="class")
    def fit(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(0, 10, size=200)
        y = 2.0 * x + 1.0 + rng.normal(0, 1.0, size=200)
        return fit_linear(x, y)

    def test_prediction_interval_brackets_point_prediction(self, fit):
        low, high = fit.prediction_interval(5.0)
        assert low < fit.predict(5.0) < high

    def test_prediction_wider_than_mean_interval(self, fit):
        p_low, p_high = fit.prediction_interval(5.0)
        m_low, m_high = fit.mean_confidence_interval(5.0)
        assert p_high - p_low > m_high - m_low

    def test_intervals_widen_away_from_x_mean(self, fit):
        near = fit.mean_confidence_interval(fit.x_mean)
        far = fit.mean_confidence_interval(fit.x_mean + 20.0)
        assert far[1] - far[0] > near[1] - near[0]

    def test_coverage_close_to_nominal(self):
        """~95% of fresh observations fall inside the 95% interval."""
        rng = np.random.default_rng(11)
        x = rng.uniform(0, 10, size=500)
        y = 3.0 * x - 2.0 + rng.normal(0, 2.0, size=500)
        fit = fit_linear(x, y)
        fresh_x = rng.uniform(0, 10, size=2000)
        fresh_y = 3.0 * fresh_x - 2.0 + rng.normal(0, 2.0, size=2000)
        covered = 0
        for xv, yv in zip(fresh_x, fresh_y):
            low, high = fit.prediction_interval(float(xv), 0.95)
            covered += low <= yv <= high
        assert 0.93 <= covered / 2000 <= 0.97

    def test_matches_known_formula_width_at_mean(self, fit):
        # At x = x_mean the prediction spread is s*sqrt(1 + 1/n).
        low, high = fit.prediction_interval(fit.x_mean, 0.95)
        from repro.dependency.special import student_t_ppf

        critical = student_t_ppf(0.975, fit.n - 2)
        expected_half = critical * fit.residual_std * np.sqrt(1 + 1 / fit.n)
        assert (high - low) / 2 == pytest.approx(expected_half)

    def test_validation(self, fit):
        with pytest.raises(RegressionError):
            fit.prediction_interval(1.0, confidence=0.0)
        with pytest.raises(RegressionError):
            fit.mean_confidence_interval(1.0, confidence=1.0)


class TestIteratorAge:
    def test_zero_when_drained(self):
        stream = SimKinesisStream(shards=2)
        assert stream.iterator_age_millis() == 0.0

    def test_lag_grows_with_backlog(self):
        stream = SimKinesisStream(shards=2)
        cw = SimCloudWatch()
        clock = SimClock()
        for _ in range(120):
            clock.advance()
            stream.put_records(1000, 0, clock)
            stream.get_records(500, clock)  # consumer at half speed
            stream.emit_metrics(cw, clock)
        # 60k backlog at ~1000 rec/s arrival ~= 60 s of lag.
        age = stream.iterator_age_millis()
        assert age == pytest.approx(60_000, rel=0.2)
        dims = {"StreamName": stream.name}
        series = cw.get_series("AWS/Kinesis", "MillisBehindLatest", dims)[1]
        assert series[-1] == pytest.approx(age, rel=0.01)
        assert series[-1] > series[10]

    def test_lag_clears_when_consumer_catches_up(self):
        stream = SimKinesisStream(shards=2)
        cw = SimCloudWatch()
        clock = SimClock()
        for _ in range(30):
            clock.advance()
            stream.put_records(1000, 0, clock)
            stream.get_records(500, clock)
            stream.emit_metrics(cw, clock)
        for _ in range(60):
            clock.advance()
            stream.get_records(4000, clock)
            stream.emit_metrics(cw, clock)
        assert stream.iterator_age_millis() == 0.0


class TestDependencyModelIntervals:
    def test_predict_interval_through_the_model(self):
        from repro.core.flow import LayerKind
        from repro.dependency.analyzer import DependencyModel, MetricRef

        rng = np.random.default_rng(3)
        x = rng.uniform(0, 60000, size=300)
        y = 2e-4 * x + 4.8 + rng.normal(0, 0.5, size=300)
        model = DependencyModel(
            source=MetricRef(LayerKind.INGESTION, "WriteCapacity"),
            target=MetricRef(LayerKind.ANALYTICS, "CPU"),
            result=fit_linear(x, y),
        )
        # The paper's worked example, with honest uncertainty: CPU for a
        # full shard's 60k records/minute.
        low, high = model.predict_interval(60_000)
        point = model.predict(60_000)
        assert low < point < high
        assert high - point > 0.5  # at least a residual's worth of width

"""Unit tests for the span-execution building blocks.

The scenario-level bit-equivalence lives in
``tests/test_span_equivalence.py``; these pin the individual APIs the
span scheduler composes: clock jumps, task due times, span profiling,
the columnar metric write path, per-service capacity-event horizons
and the batched workload-rate reads.
"""

import numpy as np
import pytest

from repro.cloud import SimCloudWatch
from repro.cloud.dynamodb import SimDynamoDBTable
from repro.cloud.ec2 import EC2Config, SimEC2Fleet
from repro.cloud.kinesis import SimKinesisStream
from repro.cloud.storm import BoltSpec, SimStormCluster, StormConfig, TopologyConfig
from repro.core.builder import FlowBuilder
from repro.core.errors import MonitoringError, SimulationError
from repro.observability.profiler import TickProfiler
from repro.simulation.clock import SimClock
from repro.simulation.engine import PeriodicTask
from repro.workload.clickstream import ClickStreamGenerator
from repro.workload.generators import ConstantRate, RateGrid, SinusoidalRate


class TestClockAdvanceTo:
    def test_jump_counts_ticks(self):
        clock = SimClock(tick_seconds=5)
        clock.advance()
        assert clock.advance_to(40) == 40
        assert clock.now == 40
        assert clock.ticks == 8

    def test_backwards_rejected(self):
        clock = SimClock(tick_seconds=1)
        clock.advance_to(10)
        with pytest.raises(SimulationError, match="cannot advance clock backwards"):
            clock.advance_to(10)

    def test_off_grid_rejected(self):
        clock = SimClock(tick_seconds=5)
        with pytest.raises(SimulationError, match="not on the tick grid"):
            clock.advance_to(12)

    def test_matches_repeated_advance(self):
        a = SimClock(tick_seconds=3)
        b = SimClock(tick_seconds=3)
        for _ in range(7):
            a.advance()
        b.advance_to(21)
        assert (a.now, a.ticks) == (b.now, b.ticks)


class TestPeriodicTaskNextDue:
    def test_before_phase_due_at_phase(self):
        task = PeriodicTask(interval=60, callback=lambda now: None, phase=30)
        assert task.next_due(0) == 30
        assert task.next_due(29) == 30

    def test_strictly_after_now(self):
        task = PeriodicTask(interval=60, callback=lambda now: None, phase=30)
        assert task.next_due(30) == 90
        assert task.next_due(31) == 90
        assert task.next_due(89) == 90

    def test_consistent_with_due(self):
        task = PeriodicTask(interval=45, callback=lambda now: None, phase=15)
        for now in range(0, 300):
            due = task.next_due(now)
            assert due > now
            assert task.due(due)
            assert not any(task.due(t) for t in range(now + 1, due))


class TestProfilerRecordSpan:
    def test_accounts_ticks_at_span_mean(self):
        profiler = TickProfiler()
        profiler.record_span(10, 0.5)
        assert profiler.tick_count == 10
        assert profiler.tick_seconds_total == 0.5
        assert profiler.tick_seconds_max == 0.05
        assert sum(profiler.histogram) == profiler.tick_count

    def test_zero_ticks_is_noop(self):
        profiler = TickProfiler()
        profiler.record_span(0, 1.0)
        assert profiler.tick_count == 0
        assert profiler.tick_seconds_total == 0.0

    def test_mixes_with_scalar_ticks(self):
        profiler = TickProfiler()
        profiler.record_tick(0.002)
        profiler.record_span(4, 0.004)
        assert profiler.tick_count == 5
        assert profiler.tick_seconds_max == 0.002
        assert sum(profiler.histogram) == 5


class TestColumnarMetricWrites:
    def test_batch_equals_scalar_appends(self):
        batched = SimCloudWatch()
        scalar = SimCloudWatch()
        times = [1, 2, 2, 5]
        values = [1.5, -2.0, 0.0, 7.25]
        batched.put_metric_data_batch("NS", "M", times, values, {"d": "x"})
        for t, v in zip(times, values):
            scalar.put_metric_data("NS", "M", v, t, {"d": "x"})
        a = batched.get_series("NS", "M", {"d": "x"})
        b = scalar.get_series("NS", "M", {"d": "x"})
        assert a == b

    def test_length_mismatch_rejected(self):
        cw = SimCloudWatch()
        with pytest.raises(
            MonitoringError, match=r"equal length, got 2 and 3 datapoints"
        ):
            cw.put_metric_data_batch("NS", "M", [1, 2], [1.0, 2.0, 3.0])

    def test_disordered_batch_rejected(self):
        cw = SimCloudWatch()
        with pytest.raises(
            MonitoringError, match=r"time-ordered: got t=3 after t=4"
        ):
            cw.put_metric_data_batch("NS", "M", [1, 4, 3], [0.0, 0.0, 0.0])

    def test_batch_before_existing_tail_rejected(self):
        cw = SimCloudWatch()
        cw.put_metric_data("NS", "M", 1.0, 10)
        with pytest.raises(
            MonitoringError, match=r"time-ordered: got t=9 after t=10"
        ):
            cw.put_metric_data_batch("NS", "M", [9, 11], [0.0, 0.0])

    def test_non_flat_columns_rejected(self):
        cw = SimCloudWatch()
        with pytest.raises(MonitoringError, match="flat numeric columns"):
            cw.put_metric_data_batch("NS", "M", [[1, 2]], [[0.0, 0.0]])

    def test_rejected_batch_leaves_series_intact(self):
        cw = SimCloudWatch()
        cw.put_metric_data_batch("NS", "M", [1, 2], [1.0, 2.0])
        with pytest.raises(MonitoringError):
            cw.put_metric_data_batch("NS", "M", [5, 4], [0.0, 0.0])
        assert cw.get_series("NS", "M") == ([1, 2], [1.0, 2.0])
        # And the series still accepts well-formed data afterwards.
        cw.put_metric_data_batch("NS", "M", [6], [3.0])
        assert cw.get_series("NS", "M") == ([1, 2, 6], [1.0, 2.0, 3.0])

    def test_empty_batch_is_noop(self):
        cw = SimCloudWatch()
        cw.put_metric_data_batch("NS", "M", [], [])
        assert cw.list_metrics() == [("NS", "M")]
        assert cw.get_series("NS", "M") == ([], [])

    def test_batch_values_round_trip_as_builtins(self):
        cw = SimCloudWatch()
        cw.put_metric_data_batch("NS", "M", np.array([1, 2]), np.array([0.5, 1.5]))
        times, values = cw.get_series("NS", "M")
        assert all(type(t) is int for t in times)
        assert all(type(v) is float for v in values)


class TestNextCapacityEvent:
    def test_kinesis_reshard_horizon(self):
        stream = SimKinesisStream(shards=2)
        assert stream.next_capacity_event(0) is None
        clock = SimClock(tick_seconds=1)
        clock.advance()
        stream.update_shard_count(4, clock.now)
        event = stream.next_capacity_event(clock.now)
        assert event is not None and event > clock.now
        # Ripe (or applied) reshards stop bounding spans.
        stream.shard_count(event)
        assert stream.next_capacity_event(event) is None

    def test_dynamodb_write_and_read_horizon(self):
        table = SimDynamoDBTable(write_units=100, read_units=100)
        assert table.next_capacity_event(0) is None
        table.update_write_capacity(200, 10)
        write_ready = table.next_capacity_event(10)
        assert write_ready is not None and write_ready > 10
        table.update_read_capacity(300, 12)
        # The horizon is the sooner of the two pending updates.
        assert table.next_capacity_event(12) == min(
            write_ready, table._pending_read_ready_at
        )
        assert table.next_capacity_event(0) is not None

    def test_storm_rebalance_horizon(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=0), initial_instances=2)
        topology = TopologyConfig(
            bolts=(BoltSpec("b", records_per_executor_per_second=500, executors=4),),
            rebalance_seconds=30,
        )
        cluster = SimStormCluster(
            fleet, StormConfig(cpu_noise_std=0.0), np.random.default_rng(0),
            topology=topology,
        )
        assert cluster.next_capacity_event(0) is None
        cluster.processing_capacity(0)  # establish the VM-count baseline
        fleet.set_desired(3, 0)
        cluster.processing_capacity(1)  # VM change noticed -> rebalance starts
        event = cluster.next_capacity_event(1)
        assert event is not None and event > 1
        assert cluster.next_capacity_event(event) is None

    def test_ec2_warmup_horizon(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=120), initial_instances=1)
        assert fleet.next_capacity_event(0) is None
        fleet.set_desired(3, 10)
        assert fleet.next_capacity_event(10) == 130
        # Once booted, the fleet is stable again.
        assert fleet.next_capacity_event(130) is None


class TestBatchedWorkloadReads:
    def test_rates_span_matches_rate_at(self):
        grid = RateGrid(SinusoidalRate(mean=100, amplitude=50, period=300), 5)
        rates = grid.rates_span(10, 40)
        assert len(rates) == 40
        assert rates == [grid.rate_at(10 + 5 * i) for i in range(40)]
        assert all(type(r) is float for r in rates)

    def test_rates_span_empty(self):
        grid = RateGrid(ConstantRate(10), 1)
        assert grid.rates_span(0, 0) == []

    def test_generate_span_bit_identical_to_generate(self):
        pattern = SinusoidalRate(mean=800, amplitude=400, period=120)
        tick = ClickStreamGenerator(pattern, np.random.default_rng(42))
        span = ClickStreamGenerator(pattern, np.random.default_rng(42))
        clock = SimClock(tick_seconds=1)
        batches = []
        for _ in range(50):
            clock.advance()
            batches.append(tick.generate(clock))
        records, payloads, distincts = span.generate_span(1, 50, 1)
        assert records == [b.records for b in batches]
        assert payloads == [b.payload_bytes for b in batches]
        assert distincts == [b.distinct_keys for b in batches]
        assert span.total_records == tick.total_records
        assert span.total_bytes == tick.total_bytes
        # Both generators end on the same RNG state: not one extra draw.
        assert (
            span._rng.bit_generator.state == tick._rng.bit_generator.state
        )


class TestBuilderSpansKnob:
    def test_spans_default_on(self):
        manager = (
            FlowBuilder("knob", seed=0)
            .workload(ConstantRate(100))
            .build()
        )
        assert manager.engine.span_execution is True

    def test_spans_false_forces_reference_loop(self):
        manager = (
            FlowBuilder("knob", seed=0)
            .workload(ConstantRate(100))
            .spans(False)
            .build()
        )
        assert manager.engine.span_execution is False

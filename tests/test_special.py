"""Tests for the self-contained special functions, cross-checked against scipy."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import RegressionError
from repro.dependency.special import (
    betainc_regularized,
    student_t_ppf,
    student_t_sf,
    student_t_two_sided_p,
)

scipy_stats = pytest.importorskip("scipy.stats")
scipy_special = pytest.importorskip("scipy.special")


class TestBetainc:
    def test_boundaries(self):
        assert betainc_regularized(2.0, 3.0, 0.0) == 0.0
        assert betainc_regularized(2.0, 3.0, 1.0) == 1.0

    @pytest.mark.parametrize("a,b,x", [
        (0.5, 0.5, 0.3), (2.0, 5.0, 0.1), (10.0, 1.0, 0.9),
        (30.0, 30.0, 0.5), (1.0, 1.0, 0.7), (100.0, 2.5, 0.99),
    ])
    def test_matches_scipy(self, a, b, x):
        assert betainc_regularized(a, b, x) == pytest.approx(
            float(scipy_special.betainc(a, b, x)), rel=1e-10
        )

    def test_validation(self):
        with pytest.raises(RegressionError):
            betainc_regularized(-1.0, 2.0, 0.5)
        with pytest.raises(RegressionError):
            betainc_regularized(1.0, 2.0, 1.5)

    @given(
        st.floats(min_value=0.5, max_value=50),
        st.floats(min_value=0.5, max_value=50),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_in_x(self, a, b, x):
        value = betainc_regularized(a, b, x)
        assert 0.0 <= value <= 1.0
        if x < 0.99:
            assert betainc_regularized(a, b, min(1.0, x + 0.01)) >= value - 1e-12


class TestStudentT:
    @pytest.mark.parametrize("t,df", [
        (0.0, 5), (1.0, 5), (2.5, 10), (-1.5, 3), (4.0, 100), (0.3, 1),
    ])
    def test_sf_matches_scipy(self, t, df):
        assert student_t_sf(t, df) == pytest.approx(
            float(scipy_stats.t.sf(t, df)), rel=1e-9, abs=1e-12
        )

    def test_symmetric_around_zero(self):
        assert student_t_sf(0.0, 7) == pytest.approx(0.5)
        assert student_t_sf(2.0, 7) == pytest.approx(1.0 - student_t_sf(-2.0, 7))

    def test_two_sided_p(self):
        assert student_t_two_sided_p(0.0, 10) == pytest.approx(1.0)
        assert student_t_two_sided_p(10.0, 10) < 1e-5

    @pytest.mark.parametrize("p,df", [(0.975, 10), (0.95, 5), (0.995, 30), (0.6, 2)])
    def test_ppf_matches_scipy(self, p, df):
        assert student_t_ppf(p, df) == pytest.approx(
            float(scipy_stats.t.ppf(p, df)), rel=1e-6
        )

    def test_ppf_inverts_cdf(self):
        for p in (0.55, 0.9, 0.99):
            t = student_t_ppf(p, 8)
            assert 1.0 - student_t_sf(t, 8) == pytest.approx(p, abs=1e-9)

    def test_ppf_negative_branch(self):
        assert student_t_ppf(0.025, 10) == pytest.approx(-student_t_ppf(0.975, 10))
        assert student_t_ppf(0.5, 10) == 0.0

    def test_validation(self):
        with pytest.raises(RegressionError):
            student_t_sf(1.0, 0)
        with pytest.raises(RegressionError):
            student_t_sf(math.nan, 5)
        with pytest.raises(RegressionError):
            student_t_ppf(0.0, 5)

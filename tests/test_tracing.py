"""Causal MAPE-loop tracing: trace propagation, chain closure for every
fault kind, Chrome-trace export, and the bit-exactness contract.

The closure tests build one purpose-built scenario per fault kind —
each fault must produce an observable symptom (throttle episode,
rebalance, degraded sensor) for its chain to reconstruct, so the
scenarios put the fault where the flow is actually loaded.
"""

import hashlib
import json

from repro import ChaosSchedule, FaultKind, FaultSpec, FlowBuilder
from repro.cloud.dynamodb import DynamoDBConfig
from repro.cloud.storm import BoltSpec, StormConfig, TopologyConfig
from repro.core.flow import LayerKind
from repro.observability import (
    chain_for,
    decision_chains,
    fault_chains,
    to_chrome_trace,
)
from repro.workload import SinusoidalRate

DURATION = 3600
SEED = 11


def _managed_builder(seed=SEED, topology=None, storm=None, observe=True):
    """The closure-test flow: load-bound everywhere, peak mid-run."""
    workload = SinusoidalRate(
        mean=1500.0, amplitude=1200.0, period=DURATION, phase=DURATION // 4
    )
    builder = (
        FlowBuilder("tracing", seed=seed)
        .ingestion(shards=2)
        .analytics(
            vms=2,
            storm=storm or StormConfig(records_per_vm_per_second=1000),
            topology=topology,
        )
        .storage(write_units=300, config=DynamoDBConfig(burst_seconds=10))
        .workload(workload)
        .control_all(style="adaptive", reference=60.0, period=60)
    )
    if observe:
        builder.observe()
    return builder


def _run_fault(spec: FaultSpec, **builder_kwargs):
    builder = _managed_builder(**builder_kwargs)
    builder.chaos(ChaosSchedule(faults=(spec,), seed=SEED, name="one-fault"))
    return builder.build().run(DURATION)


# ----------------------------------------------------------------------
# Per-fault-kind chain closure
# ----------------------------------------------------------------------
class TestFaultChainClosure:
    """Every PR-5 fault kind reconstructs to a closed causal chain."""

    def _assert_closed(self, result, spec):
        chains = fault_chains(result)
        assert len(chains) == 1
        chain = chains[0]
        assert chain.trace == f"fault:{spec.kind.value}@{spec.start}"
        assert chain.closed(horizon=DURATION), chain.describe()
        return chain

    def test_shard_brownout(self):
        spec = FaultSpec(FaultKind.SHARD_BROWNOUT, start=1350, duration=300,
                         intensity=0.7)
        chain = self._assert_closed(_run_fault(spec), spec)
        assert chain.alarm.kind == "throttle"
        assert chain.layer == "ingestion"

    def test_reshard_stall(self):
        # Stall the up-ramp reshards by 10x while load climbs toward
        # the peak: the delayed capacity forces a throttle episode.
        spec = FaultSpec(FaultKind.RESHARD_STALL, start=600, duration=900,
                         intensity=10)
        chain = self._assert_closed(_run_fault(spec), spec)
        assert chain.alarm.kind in ("throttle", "slo.breach")

    def test_worker_crash(self):
        # Crash closure needs a fixed-parallelism topology: only
        # topology runs publish a rebalance when the VM count changes.
        # Bottleneck 4400 records/s at full parallelism: ~61% CPU at
        # the 2700 records/s peak with both VMs up, so the controller
        # holds steady — and losing one VM halves the slots, pinning
        # CPU at 100% until it scales back up.
        topology = TopologyConfig(
            bolts=(
                BoltSpec("enrich", records_per_executor_per_second=1100,
                         executors=4),
                BoltSpec("aggregate", records_per_executor_per_second=1200,
                         executors=4),
            ),
            executor_slots_per_vm=4,
            rebalance_seconds=10,
        )
        spec = FaultSpec(FaultKind.WORKER_CRASH, start=1800, intensity=1)
        result = _run_fault(spec, topology=topology, storm=StormConfig())
        chain = self._assert_closed(result, spec)
        assert chain.alarm.kind == "rebalance"
        # The crash's rebalance carries the fault's trace (the fleet
        # forwards `last_change_trace` to the delayed publish).
        assert chain.alarm.trace == chain.trace

    def test_rebalance_fail(self):
        spec = FaultSpec(FaultKind.REBALANCE_FAIL, start=1800, duration=150)
        chain = self._assert_closed(_run_fault(spec), spec)
        assert chain.alarm.kind == "rebalance"
        assert chain.alarm.payload.get("forced") is True

    def test_throttle_storm(self):
        spec = FaultSpec(FaultKind.THROTTLE_STORM, start=2400, duration=300,
                         intensity=0.9)
        chain = self._assert_closed(_run_fault(spec), spec)
        assert chain.alarm.kind == "throttle"
        assert chain.layer == "storage"

    def test_update_reject(self):
        # Rejected capacity updates surface as actuation.retry events
        # from the hardened actuator — the storage layer's alarm here.
        spec = FaultSpec(FaultKind.UPDATE_REJECT, start=1200, duration=300)
        chain = self._assert_closed(_run_fault(spec), spec)
        assert chain.alarm.kind in ("actuation.retry", "throttle")

    def test_metric_delay(self):
        # A delay far beyond the run start means the sensor sees no
        # datapoints at all and serves held values: degraded.sensor.
        spec = FaultSpec(FaultKind.METRIC_DELAY, start=1200, duration=600,
                         intensity=100_000)
        chain = self._assert_closed(_run_fault(spec), spec)
        assert chain.layer == "monitoring"
        assert chain.alarm.kind == "degraded.sensor"
        assert chain.recovered

    def test_metric_dropout(self):
        spec = FaultSpec(FaultKind.METRIC_DROPOUT, start=1200, duration=600)
        chain = self._assert_closed(_run_fault(spec), spec)
        assert chain.layer == "monitoring"
        assert chain.alarm.kind == "degraded.sensor"
        assert chain.recovered


# ----------------------------------------------------------------------
# Decision chains and trace propagation
# ----------------------------------------------------------------------
class TestDecisionChains:
    def test_all_decision_chains_close(self):
        result = _managed_builder().build().run(DURATION)
        chains = decision_chains(result.recorder)
        assert chains, "no traced decisions recorded"
        open_chains = [c for c in chains if not c.closed(horizon=DURATION)]
        assert not open_chains, "\n".join(c.describe() for c in open_chains)

    def test_describe_verdict_matches_closed_at_horizon(self):
        """The CLI --causal view and the scorecard must agree: with the
        run horizon threaded through, describe() prints the same closed
        verdict closed(horizon=...) counts."""
        result = _managed_builder().build().run(DURATION)
        for chain in decision_chains(result.recorder):
            verdict = "yes" if chain.closed(horizon=DURATION) else "NO"
            assert f"closed    {verdict}" in chain.describe(horizon=DURATION)

    def test_deferred_completion_carries_decision_trace(self):
        """capacity.applied / reshard.complete events are pinned to the
        decision that commanded them, ticks after the trace closed."""
        result = _managed_builder().build().run(DURATION)
        events = result.recorder.bus.events
        applied = [e for e in events if e.kind == "capacity.applied"]
        completes = [e for e in events if e.kind == "reshard.complete"]
        assert applied and completes
        for event in applied + completes:
            assert event.trace is not None
            # The pinned trace is a decision trace: "loop@time" with
            # the command strictly before the completion.
            loop, _, at = event.trace.partition("@")
            assert int(at) <= event.time
            start = next(
                e for e in events
                if e.trace == event.trace
                and e.kind in ("capacity.update", "reshard")
            )
            assert start.time <= event.time

    def test_chain_for_round_trips_both_root_kinds(self):
        spec = FaultSpec(FaultKind.REBALANCE_FAIL, start=1800, duration=150)
        result = _run_fault(spec)
        fault_chain = chain_for(result, f"fault:rebalance-fail@{spec.start}")
        assert fault_chain is not None and fault_chain.root_kind == "fault"
        decision = next(d for d in result.recorder.decisions if d.acted)
        decision_chain = chain_for(result, decision.trace)
        assert decision_chain is not None
        assert decision_chain.root_kind == "decision"
        assert decision_chain.decision is decision
        assert chain_for(result, "no-such@999") is None


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_export_structure_and_json(self, tmp_path):
        spec = FaultSpec(FaultKind.REBALANCE_FAIL, start=1800, duration=150)
        result = _run_fault(spec)
        path = tmp_path / "trace.json"
        doc = to_chrome_trace(result.recorder, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        rows = doc["traceEvents"]
        phases = {row["ph"] for row in rows}
        assert phases == {"M", "X", "i"}
        # One process-name row, one thread-name row per layer.
        names = [r for r in rows if r["ph"] == "M" and r["name"] == "process_name"]
        assert len(names) == 1
        tids = {r["tid"] for r in rows if r["ph"] == "M" and r["name"] == "thread_name"}
        layers = {e.layer for e in result.recorder.bus.events}
        assert len(tids) == len(layers)
        # Every causal trace renders one duration bar; stamped events'
        # instants carry the trace id in args for Perfetto queries
        # (alarms are data-path symptoms and legitimately untraced).
        bars = [r for r in rows if r["ph"] == "X"]
        assert len(bars) == len(list(result.recorder.bus.traces()))
        instants = [r for r in rows if r["ph"] == "i"]
        traced_events = [e for e in result.recorder.bus.events if e.trace is not None]
        assert len(instants) == len(result.recorder.bus.events)
        assert sum(1 for r in instants if "trace" in r["args"]) == len(traced_events)
        assert traced_events, "no traced events in the run"


# ----------------------------------------------------------------------
# Bit-exactness: tracing must not move a single bit of the simulation
# ----------------------------------------------------------------------
def _fingerprint(observe: bool, spans: bool) -> str:
    """Reduced fig6-style fingerprint (same hashing approach as
    benchmarks/_fig6_fingerprint.py, shorter horizon)."""
    duration = 1800
    manager = (
        FlowBuilder("fp", seed=7)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1500.0, amplitude=900.0, period=duration))
        .control_all(style="adaptive", reference=60.0, period=60)
        .spans(spans)
    )
    if observe:
        manager.observe()
    run = manager.build().run(duration)
    lines = []
    for kind in LayerKind:
        for label, trace in (
            ("util", run.utilization_trace(kind)),
            ("cap", run.capacity_trace(kind, period=300)),
            ("throttle", run.throttle_trace(kind)),
        ):
            lines.append(
                f"{kind.name}.{label} times={list(trace.times)!r} "
                f"values={[repr(v) for v in trace.values]!r}"
            )
    for snap in run.collector.snapshots:
        lines.append(
            f"snap t={snap.time} "
            f"{sorted((k, repr(v)) for k, v in snap.values.items())!r}"
        )
    lines.append(f"cost={[(k, repr(v)) for k, v in sorted(run.cost_by_layer.items())]!r}")
    lines.append(f"dropped={run.dropped_records},{run.dropped_writes}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestTracingBitExactness:
    def test_fingerprint_identical_with_and_without_tracing(self):
        baseline = _fingerprint(observe=False, spans=True)
        assert _fingerprint(observe=True, spans=True) == baseline
        assert _fingerprint(observe=False, spans=False) == baseline
        assert _fingerprint(observe=True, spans=False) == baseline

    def test_chaos_trace_ids_identical_across_execution_modes(self):
        spec = FaultSpec(FaultKind.THROTTLE_STORM, start=2400, duration=300,
                         intensity=0.9)
        results = {}
        for spans in (True, False):
            builder = _managed_builder()
            builder.chaos(ChaosSchedule(faults=(spec,), seed=SEED, name="x"))
            builder.spans(spans)
            results[spans] = builder.build().run(DURATION)
        spans_events = [
            (e.time, e.fault, e.phase, e.trace)
            for e in results[True].chaos_events
        ]
        tick_events = [
            (e.time, e.fault, e.phase, e.trace)
            for e in results[False].chaos_events
        ]
        assert spans_events == tick_events

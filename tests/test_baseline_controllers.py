"""Unit tests for the baseline controllers ([12], [14], [1])."""

import pytest

from repro.control import (
    FixedGainConfig,
    FixedGainController,
    QuasiAdaptiveConfig,
    QuasiAdaptiveController,
    RuleBasedConfig,
    RuleBasedController,
)
from repro.core.errors import ControlError


class TestFixedGain:
    def test_integral_action_with_constant_gain(self):
        controller = FixedGainController(FixedGainConfig(reference=60.0, gain=0.5))
        assert controller.compute(10.0, 80.0, 0) == pytest.approx(20.0)
        assert controller.compute(10.0, 40.0, 0) == pytest.approx(0.0)

    def test_band_suppresses_action(self):
        controller = FixedGainController(
            FixedGainConfig(reference=60.0, gain=0.5, band_low=50.0, band_high=70.0)
        )
        assert controller.compute(10.0, 65.0, 0) == 10.0
        assert controller.compute(10.0, 75.0, 0) == pytest.approx(17.5)

    def test_gain_never_changes(self):
        controller = FixedGainController(FixedGainConfig(reference=60.0, gain=0.5))
        for k in range(10):
            controller.compute(10.0, 90.0, 60 * k)
        # No state: the step is identical every time.
        assert controller.compute(10.0, 90.0, 600) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ControlError):
            FixedGainConfig(reference=60.0, gain=0.0)
        with pytest.raises(ControlError):
            FixedGainConfig(reference=60.0, gain=0.5, band_low=65.0)
        with pytest.raises(ControlError):
            FixedGainConfig(reference=60.0, gain=0.5, band_high=55.0)


class TestQuasiAdaptive:
    def test_gain_is_aggressiveness_over_estimate(self):
        controller = QuasiAdaptiveController(
            QuasiAdaptiveConfig(reference=60.0, aggressiveness=0.8, initial_process_gain=2.0)
        )
        assert controller.effective_gain == pytest.approx(0.4)

    def test_estimator_updates_from_observed_response(self):
        controller = QuasiAdaptiveController(
            QuasiAdaptiveConfig(
                reference=60.0, aggressiveness=0.8,
                initial_process_gain=2.0, forgetting=0.5,
            )
        )
        controller.compute(10.0, 80.0, 0)
        # The plant responded: u moved 10 -> 12, y moved 80 -> 70 (|dy/du|=5).
        controller.compute(12.0, 70.0, 60)
        assert controller.process_gain_estimate == pytest.approx(0.5 * 2.0 + 0.5 * 5.0)

    def test_no_update_when_actuator_did_not_move(self):
        controller = QuasiAdaptiveController(
            QuasiAdaptiveConfig(reference=60.0, initial_process_gain=2.0)
        )
        controller.compute(10.0, 80.0, 0)
        controller.compute(10.0, 75.0, 60)
        assert controller.process_gain_estimate == 2.0

    def test_gain_clamped(self):
        controller = QuasiAdaptiveController(
            QuasiAdaptiveConfig(
                reference=60.0, aggressiveness=1.0, initial_process_gain=1e-9,
                l_min=0.01, l_max=5.0,
            )
        )
        assert controller.effective_gain == 5.0

    def test_reset(self):
        controller = QuasiAdaptiveController(
            QuasiAdaptiveConfig(reference=60.0, initial_process_gain=2.0, forgetting=0.5)
        )
        controller.compute(10.0, 80.0, 0)
        controller.compute(15.0, 50.0, 60)
        controller.reset()
        assert controller.process_gain_estimate == 2.0

    def test_validation(self):
        with pytest.raises(ControlError):
            QuasiAdaptiveConfig(reference=60.0, aggressiveness=0.0)
        with pytest.raises(ControlError):
            QuasiAdaptiveConfig(reference=60.0, initial_process_gain=0.0)
        with pytest.raises(ControlError):
            QuasiAdaptiveConfig(reference=60.0, forgetting=1.5)


class TestRuleBased:
    def config(self, **kwargs):
        defaults = dict(
            upper_threshold=75.0, lower_threshold=35.0,
            step_up=2.0, step_down=1.0, cooldown=300,
        )
        defaults.update(kwargs)
        return RuleBasedConfig(**defaults)

    def test_scales_up_above_threshold(self):
        controller = RuleBasedController(self.config())
        assert controller.compute(10.0, 80.0, now=0) == 12.0

    def test_scales_down_below_threshold(self):
        controller = RuleBasedController(self.config())
        assert controller.compute(10.0, 30.0, now=0) == 9.0

    def test_no_action_inside_band(self):
        controller = RuleBasedController(self.config())
        assert controller.compute(10.0, 60.0, now=0) == 10.0

    def test_cooldown_blocks_consecutive_actions(self):
        controller = RuleBasedController(self.config(cooldown=300))
        assert controller.compute(10.0, 90.0, now=0) == 12.0
        # Still overloaded, but within the cooldown.
        assert controller.compute(12.0, 95.0, now=60) == 12.0
        assert controller.compute(12.0, 95.0, now=300) == 14.0

    def test_scale_fraction_grows_step_with_capacity(self):
        controller = RuleBasedController(self.config(scale_fraction=0.5, cooldown=0))
        assert controller.compute(100.0, 90.0, now=0) == 150.0

    def test_reset_clears_cooldown(self):
        controller = RuleBasedController(self.config(cooldown=300))
        controller.compute(10.0, 90.0, now=0)
        controller.reset()
        assert controller.compute(12.0, 90.0, now=60) == 14.0

    def test_validation(self):
        with pytest.raises(ControlError):
            RuleBasedConfig(upper_threshold=50.0, lower_threshold=60.0)
        with pytest.raises(ControlError):
            RuleBasedConfig(upper_threshold=70.0, lower_threshold=30.0, step_up=0.0)
        with pytest.raises(ControlError):
            RuleBasedConfig(upper_threshold=70.0, lower_threshold=30.0, cooldown=-1)

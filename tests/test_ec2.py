"""Unit tests for the simulated EC2 fleet."""

import pytest

from repro.cloud import EC2Config, SimEC2Fleet
from repro.cloud.ec2 import InstanceState
from repro.core.errors import CapacityError, ConfigurationError


class TestEC2Config:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            EC2Config(min_instances=5, max_instances=2)
        with pytest.raises(ConfigurationError):
            EC2Config(min_instances=0)

    def test_rejects_negative_boot(self):
        with pytest.raises(ConfigurationError):
            EC2Config(boot_seconds=-1)


class TestSimEC2Fleet:
    def test_initial_instances_ready_immediately(self):
        fleet = SimEC2Fleet(initial_instances=3)
        assert fleet.running_count(0) == 3
        assert fleet.provisioned_count(0) == 3

    def test_initial_count_respects_limits(self):
        with pytest.raises(CapacityError):
            SimEC2Fleet(config=EC2Config(max_instances=2), initial_instances=3)

    def test_scale_up_has_boot_latency(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=90), initial_instances=1)
        fleet.set_desired(3, now=100)
        assert fleet.provisioned_count(100) == 3
        assert fleet.running_count(100) == 1
        assert fleet.running_count(189) == 1
        assert fleet.running_count(190) == 3

    def test_scale_down_is_immediate(self):
        fleet = SimEC2Fleet(initial_instances=4)
        fleet.set_desired(2, now=50)
        assert fleet.running_count(50) == 2
        assert fleet.provisioned_count(50) == 2

    def test_scale_down_terminates_newest_first(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=0), initial_instances=1)
        fleet.set_desired(2, now=100)  # newer instance launched at t=100
        fleet.set_desired(1, now=200)
        survivors = fleet.instances(200)
        assert len(survivors) == 1
        assert survivors[0].launched_at == 0

    def test_desired_clamped_to_limits(self):
        fleet = SimEC2Fleet(config=EC2Config(min_instances=1, max_instances=4), initial_instances=2)
        assert fleet.set_desired(100, now=0) == 4
        assert fleet.set_desired(0, now=10) == 1

    def test_billing_stops_at_termination(self):
        fleet = SimEC2Fleet(initial_instances=2)
        assert fleet.billable_count(10) == 2
        fleet.set_desired(1, now=20)
        assert fleet.billable_count(20) == 1

    def test_billing_starts_at_launch_not_before(self):
        """Regression: an instance launched at t=100 must not be
        billable at earlier times — a cost meter integrating backwards
        (or a span hoist reading ``billable_count`` at an earlier tick)
        would overcharge."""
        fleet = SimEC2Fleet(initial_instances=1)
        fleet.set_desired(2, now=100)
        late = fleet.instances(100)[-1]
        assert late.launched_at == 100
        assert not late.billable(50)
        assert late.billable(100)
        assert fleet.billable_count(50) == 1
        assert fleet.billable_count(100) == 2

    def test_pending_instances_listed_by_state(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=60), initial_instances=1)
        fleet.set_desired(2, now=10)
        assert len(fleet.instances(10, InstanceState.PENDING)) == 1
        assert len(fleet.instances(10, InstanceState.RUNNING)) == 1

    def test_instance_ids_are_unique(self):
        fleet = SimEC2Fleet(initial_instances=2)
        fleet.set_desired(5, now=0)
        ids = [i.instance_id for i in fleet.instances(0)]
        assert len(set(ids)) == 5

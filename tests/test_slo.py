"""Tests for SLO-derived plan-space constraints (Fig. 3's SLO input)."""

import pytest

from repro.cloud.kinesis import KinesisConfig
from repro.cloud.storm import StormConfig
from repro.core.errors import OptimizationError
from repro.core.flow import FlowSpec, LayerKind, LayerSpec
from repro.optimization import (
    FlowSLO,
    ResourceShareAnalyzer,
    slo_floor_constraints,
)


def small_flow():
    return FlowSpec(
        name="slo-flow",
        layers=(
            LayerSpec(LayerKind.INGESTION, "K", "kinesis.shard", "Shards", 1, 32),
            LayerSpec(LayerKind.ANALYTICS, "S", "ec2.m4.large", "VMs", 1, 16),
            LayerSpec(LayerKind.STORAGE, "D", "dynamodb.wcu", "WCU", 1, 2000),
        ),
    )


class TestFlowSLO:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            FlowSLO(peak_records_per_second=0)
        with pytest.raises(OptimizationError):
            FlowSLO(peak_records_per_second=100, max_utilization=0)
        with pytest.raises(OptimizationError):
            FlowSLO(peak_records_per_second=100, peak_writes_per_second=0)


class TestFloorConstraints:
    def test_floors_carry_headroom(self):
        slo = FlowSLO(peak_records_per_second=3000, max_utilization=60.0)
        floors = slo_floor_constraints(
            slo, storm=StormConfig(records_per_vm_per_second=1000)
        )
        by_layer = {c.coefficients[0][0]: c for c in floors}
        # 3000/0.6 = 5000 rec/s required: 5 shards, 5 VMs (1000 each).
        assert by_layer[LayerKind.INGESTION].satisfied(
            {LayerKind.INGESTION: 5, LayerKind.ANALYTICS: 0, LayerKind.STORAGE: 0}
        )
        assert not by_layer[LayerKind.INGESTION].satisfied(
            {LayerKind.INGESTION: 4, LayerKind.ANALYTICS: 0, LayerKind.STORAGE: 0}
        )
        assert not by_layer[LayerKind.ANALYTICS].satisfied(
            {LayerKind.ANALYTICS: 4, LayerKind.INGESTION: 0, LayerKind.STORAGE: 0}
        )

    def test_storage_floor_only_with_write_rate(self):
        without = slo_floor_constraints(FlowSLO(peak_records_per_second=1000))
        assert len(without) == 2
        with_writes = slo_floor_constraints(
            FlowSLO(peak_records_per_second=1000, peak_writes_per_second=120)
        )
        assert len(with_writes) == 3
        storage = [c for c in with_writes if c.coefficients[0][0] == LayerKind.STORAGE][0]
        # 120/0.6 = 200 WCU floor.
        assert "200" in storage.describe()

    def test_custom_service_configs_change_floors(self):
        slo = FlowSLO(peak_records_per_second=3000, max_utilization=100.0)
        floors = slo_floor_constraints(
            slo,
            kinesis=KinesisConfig(records_per_shard_per_second=500),
        )
        ingestion = [c for c in floors if c.coefficients[0][0] == LayerKind.INGESTION][0]
        assert "6" in ingestion.describe()  # 3000/500


class TestPlanSpaceWithSLO:
    def test_every_pareto_plan_meets_the_slo(self):
        slo = FlowSLO(
            peak_records_per_second=3000,
            max_utilization=60.0,
            peak_writes_per_second=100,
        )
        constraints = slo_floor_constraints(
            slo, storm=StormConfig(records_per_vm_per_second=1000)
        )
        analyzer = ResourceShareAnalyzer(small_flow(), constraints=constraints)
        result = analyzer.analyze(budget_per_hour=2.0, population_size=60,
                                  generations=100, seed=1)
        assert len(result) >= 1
        for solution in result.solutions:
            assert solution.ingestion >= 5
            assert solution.analytics >= 5
            assert solution.storage >= 167  # ceil(100/0.6)

    def test_impossible_slo_yields_empty_front(self):
        # The SLO wants more shards than the flow's limit allows.
        slo = FlowSLO(peak_records_per_second=100_000, max_utilization=50.0)
        constraints = slo_floor_constraints(slo)
        analyzer = ResourceShareAnalyzer(small_flow(), constraints=constraints)
        result = analyzer.analyze(budget_per_hour=100.0, population_size=40,
                                  generations=40, seed=1)
        assert len(result) == 0

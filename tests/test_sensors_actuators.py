"""Unit tests for CloudWatch sensors and service actuators."""

import pytest

from repro.cloud import SimCloudWatch, SimDynamoDBTable, SimEC2Fleet, SimKinesisStream
from repro.cloud.dynamodb import DynamoDBConfig
from repro.cloud.ec2 import EC2Config
from repro.control import (
    CloudWatchSensor,
    DynamoDBWriteActuator,
    KinesisShardActuator,
    StormVMActuator,
)
from repro.core.errors import ControlError


class TestCloudWatchSensor:
    def test_reads_window_average(self):
        cw = SimCloudWatch()
        for t, v in [(10, 40.0), (20, 60.0), (30, 80.0)]:
            cw.put_metric_data("NS", "M", v, t)
        sensor = CloudWatchSensor(cw, "NS", "M", window=20)
        assert sensor.measure(30) == pytest.approx(70.0)  # (60+80)/2

    def test_returns_none_when_empty(self):
        sensor = CloudWatchSensor(SimCloudWatch(), "NS", "M", window=60)
        assert sensor.measure(60) is None

    def test_statistic_option(self):
        cw = SimCloudWatch()
        cw.put_metric_data("NS", "M", 5.0, 10)
        cw.put_metric_data("NS", "M", 15.0, 20)
        sensor = CloudWatchSensor(cw, "NS", "M", window=60, statistic="Sum")
        assert sensor.measure(60) == 20.0

    def test_window_validation(self):
        with pytest.raises(ControlError):
            CloudWatchSensor(SimCloudWatch(), "NS", "M", window=0)

    def test_percentile_statistic(self):
        cw = SimCloudWatch()
        for t, v in enumerate([10.0, 20.0, 30.0, 1000.0], start=1):
            cw.put_metric_data("NS", "Latency", v, t)
        sensor = CloudWatchSensor(cw, "NS", "Latency", window=60, statistic="p50")
        assert sensor.measure(60) == pytest.approx(25.0)

    def test_bad_statistic_rejected_at_construction(self):
        from repro.core.errors import MonitoringError

        with pytest.raises(MonitoringError, match="unsupported statistic"):
            CloudWatchSensor(SimCloudWatch(), "NS", "M", statistic="Median")


class TestKinesisShardActuator:
    def test_get_and_apply(self):
        stream = SimKinesisStream(shards=2)
        actuator = KinesisShardActuator(stream)
        assert actuator.get(0) == 2.0
        applied = actuator.apply(5.0, now=0)
        assert applied == 5.0
        # While resharding, get() reports the commanded target.
        assert actuator.get(1) == 5.0

    def test_apply_during_reshard_returns_inflight_target(self):
        stream = SimKinesisStream(shards=2)
        actuator = KinesisShardActuator(stream)
        actuator.apply(5.0, now=0)
        assert actuator.apply(9.0, now=1) == 5.0


class TestStormVMActuator:
    def test_get_counts_provisioned(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=60), initial_instances=2)
        actuator = StormVMActuator(fleet)
        actuator.apply(4.0, now=0)
        assert actuator.get(0) == 4.0  # includes booting VMs
        assert fleet.running_count(0) == 2

    def test_apply_clamps_to_fleet_limits(self):
        fleet = SimEC2Fleet(config=EC2Config(max_instances=3), initial_instances=1)
        actuator = StormVMActuator(fleet)
        assert actuator.apply(99.0, now=0) == 3.0


class TestDynamoDBWriteActuator:
    def test_get_and_apply_with_delay(self):
        table = SimDynamoDBTable(
            write_units=100, config=DynamoDBConfig(update_delay_seconds=30)
        )
        actuator = DynamoDBWriteActuator(table)
        assert actuator.apply(200.0, now=0) == 200.0
        # During the update, get() reports the commanded target.
        assert actuator.get(10) == 200.0
        assert table.write_capacity(10) == 100
        assert actuator.get(30) == 200.0
        assert table.write_capacity(30) == 200

"""Unit and property tests for OLS regression."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.errors import RegressionError
from repro.dependency import fit_linear, fit_multiple, pearson_r


class TestPearsonR:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_no_correlation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert abs(pearson_r(x, y)) < 0.05

    def test_validation(self):
        with pytest.raises(RegressionError):
            pearson_r([1, 2], [1, 2, 3])
        with pytest.raises(RegressionError):
            pearson_r([1], [2])
        with pytest.raises(RegressionError):
            pearson_r([1, 1, 1], [1, 2, 3])  # zero variance
        with pytest.raises(RegressionError):
            pearson_r([1, float("nan"), 3], [1, 2, 3])


class TestFitLinear:
    def test_exact_line(self):
        result = fit_linear([0, 1, 2, 3], [4.8, 5.0, 5.2, 5.4])
        assert result.slope == pytest.approx(0.2)
        assert result.intercept == pytest.approx(4.8)
        assert result.r_squared == pytest.approx(1.0)
        assert result.p_value < 1e-6

    def test_recovers_noisy_coefficients(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1e5, size=2000)
        y = 0.0002 * x + 4.8 + rng.normal(0, 0.5, size=2000)
        result = fit_linear(x, y)
        assert result.slope == pytest.approx(0.0002, rel=0.05)
        assert result.intercept == pytest.approx(4.8, rel=0.05)
        assert result.r > 0.99

    def test_matches_scipy_inference(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 10, size=40)
        y = 2.0 * x + 1.0 + rng.normal(0, 3.0, size=40)
        ours = fit_linear(x, y)
        theirs = scipy_stats.linregress(x, y)
        assert ours.slope == pytest.approx(theirs.slope)
        assert ours.intercept == pytest.approx(theirs.intercept)
        assert ours.r == pytest.approx(theirs.rvalue)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)
        assert ours.stderr_slope == pytest.approx(theirs.stderr)

    def test_predict(self):
        result = fit_linear([0, 1, 2], [1.0, 3.0, 5.0])
        assert result.predict(10) == pytest.approx(21.0)

    def test_slope_confidence_interval_covers_truth(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 10, size=100)
        y = 5.0 * x + rng.normal(0, 1.0, size=100)
        low, high = fit_linear(x, y).slope_confidence_interval(0.99)
        assert low < 5.0 < high

    def test_confidence_validation(self):
        result = fit_linear([0, 1, 2], [1.0, 3.0, 5.0])
        with pytest.raises(RegressionError):
            result.slope_confidence_interval(1.5)

    def test_equation_rendering(self):
        result = fit_linear([0, 1, 2, 3], [4.8, 5.0, 5.2, 5.4])
        assert result.equation("CPU", "WriteCapacity") == "CPU ~ 0.2*WriteCapacity + 4.8"

    def test_flat_y_gives_zero_slope(self):
        result = fit_linear([0, 1, 2, 3], [5.0, 5.0, 5.0, 5.0])
        assert result.slope == 0.0
        assert result.p_value == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(RegressionError):
            fit_linear([1, 2], [1, 2])
        with pytest.raises(RegressionError):
            fit_linear([1, 1, 1], [1, 2, 3])
        with pytest.raises(RegressionError):
            fit_linear([[1, 2], [3, 4]], [1, 2])


class TestFitMultiple:
    def test_recovers_plane(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 10, size=(200, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 7.0 + rng.normal(0, 0.1, size=200)
        result = fit_multiple(X, y)
        assert result.coefficients[0] == pytest.approx(3.0, abs=0.05)
        assert result.coefficients[1] == pytest.approx(-2.0, abs=0.05)
        assert result.intercept == pytest.approx(7.0, abs=0.2)
        assert result.r_squared > 0.99

    def test_predict_checks_dimensions(self):
        result = fit_multiple([[1, 2], [2, 1], [3, 3], [4, 1], [0, 0]], [1, 2, 3, 4, 5])
        with pytest.raises(RegressionError):
            result.predict([1.0])

    def test_collinear_features_do_not_crash(self):
        X = [[1, 2], [2, 4], [3, 6], [4, 8], [5, 10]]
        y = [1, 2, 3, 4, 5]
        result = fit_multiple(X, y)
        assert result.r_squared == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(RegressionError):
            fit_multiple([[1, 2]], [1])  # too few observations
        with pytest.raises(RegressionError):
            fit_multiple([[1], [2], [3]], [1, 2])  # length mismatch


class TestProperties:
    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-5, max_value=5),
        st.integers(min_value=0, max_value=2 ** 31),
    )
    def test_recovers_exact_lines(self, intercept, slope, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-10, 10, size=20)
        if np.ptp(x) < 1e-6:
            return
        y = slope * x + intercept
        result = fit_linear(x, y)
        assert result.slope == pytest.approx(slope, abs=1e-6)
        assert result.intercept == pytest.approx(intercept, abs=1e-5)

    @given(st.integers(min_value=0, max_value=2 ** 31))
    def test_r_squared_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, size=30)
        y = rng.uniform(0, 1, size=30)
        if np.ptp(x) < 1e-9 or np.ptp(y) < 1e-12:
            return
        result = fit_linear(x, y)
        assert -1e-9 <= result.r_squared <= 1.0 + 1e-9
        assert 0.0 <= result.p_value <= 1.0

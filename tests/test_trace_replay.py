"""TracePattern replay: grid-exact, span-exact, hold-last pinned.

The scenario catalog replays external traces through the same
``RatePattern``/``RateGrid`` grid API every other workload uses, so its
contract is the strong one: ``values()`` elementwise bit-identical to
per-tick ``rate(t)`` calls, and a managed run reading the trace through
span-batched execution bit-identical to the per-tick reference loop —
including traces whose length does not divide the span horizon and
traces with recording gaps.
"""

import numpy as np
import pytest

from repro.core.builder import FlowBuilder
from repro.core.errors import ConfigurationError
from repro.core.flow import LayerKind
from repro.workload.generators import RateGrid, TracePattern
from repro.workload.traces import Trace


def gappy_trace() -> Trace:
    """Irregular sampling: 60 s cadence, dropped points, a long gap,
    and a length (13 points) that divides no control period."""
    points = [
        (0, 120.0), (60, 180.0), (120, 90.0), (300, 400.0), (360, 410.0),
        (420, 380.0), (900, 55.0), (960, 60.0), (1500, 800.0), (1560, 790.0),
        (1620, 810.0), (2400, 230.0), (2460, 240.0),
    ]
    return Trace("gappy", points)


class TestHoldSemantics:
    def test_hold_last_inside_gaps_and_past_end(self):
        pattern = TracePattern(gappy_trace())
        # Inside the 420 -> 900 gap the 420 value holds.
        assert pattern.rate(421) == 380.0
        assert pattern.rate(899) == 380.0
        assert pattern.rate(900) == 55.0
        # Past the last point the final value holds forever.
        assert pattern.rate(2460) == 240.0
        assert pattern.rate(10**7) == 240.0

    def test_hold_first_before_start(self):
        trace = Trace("late", [(500, 70.0), (600, 80.0)])
        pattern = TracePattern(trace)
        assert pattern.rate(0) == 70.0
        assert pattern.rate(499) == 70.0
        assert pattern.rate(500) == 70.0

    def test_scale_applies_everywhere(self):
        pattern = TracePattern(gappy_trace(), scale=2.5)
        assert pattern.rate(0) == 120.0 * 2.5
        assert pattern.rate(10**6) == 240.0 * 2.5

    def test_rejects_empty_trace_and_bad_scale(self):
        with pytest.raises(ConfigurationError, match="empty trace"):
            TracePattern(Trace("empty"))
        with pytest.raises(ConfigurationError, match="scale"):
            TracePattern(gappy_trace(), scale=0.0)
        with pytest.raises(ConfigurationError, match="scale"):
            TracePattern(gappy_trace(), scale=float("nan"))

    def test_rejects_non_finite_values(self):
        trace = Trace("bad", [(0, 1.0), (60, float("inf"))])
        with pytest.raises(ConfigurationError, match="non-finite"):
            TracePattern(trace)


class TestGridEquality:
    """values() must equal per-tick rate(t) to the last ULP."""

    @pytest.mark.parametrize("step", [1, 7, 60, 97])
    @pytest.mark.parametrize("scale", [1.0, 3.7])
    def test_values_bitwise_equal_to_rate(self, step, scale):
        pattern = TracePattern(gappy_trace(), scale=scale)
        start, end = 0, 3000  # runs past the trace end
        grid = pattern.values(start, end, step)
        scalar = [pattern.rate(t) for t in range(start, end, step)]
        assert [repr(v) for v in grid.tolist()] == [repr(v) for v in scalar]

    def test_rate_grid_span_reads_match_per_tick(self):
        pattern = TracePattern(gappy_trace())
        grid = RateGrid(pattern, step=1, chunk=256)
        # Span horizon (777) deliberately does not divide the trace
        # length or any sampling cadence.
        span = grid.rates_span(0, 777)
        per_tick = [pattern.rate(t) for t in range(777)]
        assert [repr(v) for v in span] == [repr(v) for v in per_tick]

    def test_values_before_first_point_clamp(self):
        trace = Trace("late", [(500, 70.0), (600, 80.0)])
        pattern = TracePattern(trace)
        grid = pattern.values(0, 700, 100)
        assert grid.tolist() == [70.0, 70.0, 70.0, 70.0, 70.0, 70.0, 80.0]


def _fingerprint(result):
    """Full-precision repr of every capacity/utilization trace."""
    out = []
    for kind in LayerKind:
        for trace in (result.capacity_trace(kind), result.utilization_trace(kind)):
            out.append((kind.name, trace.times, [repr(v) for v in trace.values]))
    out.append(repr(result.total_cost))
    return out


class TestSpanVsTickReplay:
    """A managed run replaying a trace must be bit-identical with
    span-batched execution and with the per-tick reference loop."""

    DURATION = 1800

    def _run(self, spans: bool, scale: float = 12.0):
        builder = (
            FlowBuilder("replay-equiv", seed=11)
            .ingestion(shards=2)
            .analytics(vms=2)
            .storage(write_units=300)
            .workload(TracePattern(gappy_trace(), scale=scale))
            .control_all(style="adaptive", reference=60.0, period=60)
            .spans(spans)
        )
        return builder.build().run(self.DURATION)

    def test_span_equals_reference(self):
        assert _fingerprint(self._run(True)) == _fingerprint(self._run(False))

    def test_trace_shorter_than_horizon_holds_last(self):
        # The trace ends at t=2460 < duration is false here (1800), so
        # use a shorter trace: ends mid-run, hold-last drives the rest.
        short = Trace("short", [(0, 900.0), (300, 1800.0), (700, 600.0)])
        runs = []
        for spans in (True, False):
            builder = (
                FlowBuilder("replay-short", seed=3)
                .ingestion(shards=2)
                .analytics(vms=2)
                .storage(write_units=300)
                .workload(TracePattern(short))
                .control_all(style="adaptive", reference=60.0, period=60)
                .spans(spans)
            )
            runs.append(builder.build().run(self.DURATION))
        assert _fingerprint(runs[0]) == _fingerprint(runs[1])


class TestCsvImport:
    def test_from_csv_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        gappy_trace().to_csv(path)
        pattern = TracePattern.from_csv(path, scale=2.0)
        reference = TracePattern(gappy_trace(), scale=2.0)
        assert np.array_equal(pattern.values(0, 3000, 7), reference.values(0, 3000, 7))

    def test_shipped_sample_trace_loads(self):
        from repro.scenarios.spec import PatternSpec

        pattern = PatternSpec("trace", {"csv": "sample_daily.csv"}).build(7, 86400)
        assert isinstance(pattern, TracePattern)
        assert pattern.rate(0) > 0.0

"""Always-on telemetry: registry semantics, control-boundary sampling,
execution-mode parity, and the dashboard/profiler surfaces."""

import pytest

from repro import FlowBuilder
from repro.core.errors import MonitoringError
from repro.observability import Telemetry, TickProfiler
from repro.observability.telemetry import HISTOGRAM_BOUNDS, Histogram
from repro.workload import SinusoidalRate

DURATION = 1800
SEED = 7


def _managed_builder(telemetry=True, spans=True, observe=False):
    builder = (
        FlowBuilder("telemetry", seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1500.0, amplitude=900.0, period=DURATION))
        .control_all(style="adaptive", reference=60.0, period=60)
        .telemetry(telemetry)
        .spans(spans)
    )
    if observe:
        builder.observe()
    return builder


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucketing_and_stats(self):
        h = Histogram()
        for value in (0.3, 1.0, 3.0, 2000.0):
            h.observe(value)
        assert h.count == 4
        assert h.maximum == 2000.0
        assert h.mean == pytest.approx((0.3 + 1.0 + 3.0 + 2000.0) / 4)
        assert sum(h.buckets) == h.count
        assert h.buckets[0] == 1          # 0.3 <= 0.5
        assert h.buckets[-1] == 1         # 2000 overflows the last bound
        assert len(h.buckets) == len(HISTOGRAM_BOUNDS) + 1

    def test_as_dict_is_json_shaped(self):
        h = Histogram()
        h.observe(5.0)
        d = h.as_dict()
        assert d["count"] == 1
        assert d["buckets"][len([b for b in HISTOGRAM_BOUNDS if b < 5.0])] == 1


class TestTelemetryRegistry:
    def test_counters_accumulate(self):
        t = Telemetry()
        t.inc("a")
        t.inc("a", 2)
        assert t.counter("a") == 3
        assert t.counter("missing") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(MonitoringError):
            Telemetry().inc("a", -1)

    def test_gauges_keep_last_value(self):
        t = Telemetry()
        t.set_gauge("g", 1.0)
        t.set_gauge("g", 7.0)
        assert t.gauge("g") == 7.0
        assert t.gauge("missing", default=-1.0) == -1.0

    def test_rows_and_render_cover_all_kinds(self):
        t = Telemetry()
        t.inc("c")
        t.set_gauge("g", 2.0)
        t.observe("h", 3.0)
        kinds = {row[2] for row in t.rows()}
        assert kinds == {"counter", "gauge", "histogram"}
        text = t.render()
        for name in ("c", "g", "h"):
            assert name in text

    def test_as_dict_sorted_and_json_ready(self):
        import json

        t = Telemetry()
        t.inc("z")
        t.inc("a")
        d = t.as_dict()
        assert list(d["counters"]) == ["a", "z"]
        json.dumps(d)


# ----------------------------------------------------------------------
# Managed-flow integration
# ----------------------------------------------------------------------
class TestManagedFlowTelemetry:
    def test_on_by_default_and_populated(self):
        result = _managed_builder().build().run(DURATION)
        t = result.telemetry
        assert t is not None
        # One decision counter tick per control pass per loop.
        assert t.counter("control.ingestion.decisions") == DURATION // 60
        assert t.counter("control.storage.decisions") == DURATION // 60
        # Gauges sampled at snapshot boundaries.
        assert "pipeline.producer_backlog" in t.gauges
        assert "cost.storage" in t.gauges
        assert "actuator.storage.failed_attempts" in t.gauges
        assert "sensor.ingestion.stale" in t.gauges
        # Step sizes land in per-loop histograms when loops act.
        acted = sum(
            t.counter(f"control.{loop}.actions")
            for loop in ("ingestion", "analytics", "storage")
        )
        recorded = sum(h.count for h in t.histograms.values())
        assert recorded == acted

    def test_disabled_flow_has_no_registry(self):
        result = _managed_builder(telemetry=False).build().run(DURATION)
        assert result.telemetry is None

    def test_span_and_per_tick_runs_sample_identically(self):
        """Sampling reads settled state at control boundaries, so both
        execution modes must see bit-identical telemetry."""
        spans = _managed_builder(spans=True).build().run(DURATION)
        ticks = _managed_builder(spans=False).build().run(DURATION)
        assert spans.telemetry.as_dict() == ticks.telemetry.as_dict()

    def test_wall_seconds_recorded(self):
        result = _managed_builder().build().run(DURATION)
        assert result.wall_seconds > 0.0

    def test_dashboard_renders_telemetry_section(self):
        result = _managed_builder(observe=True).build().run(DURATION)
        text = result.dashboard()
        assert "telemetry" in text
        assert "control.storage.decisions" in text
        assert "actuator.ingestion.breaker_openings" in text


# ----------------------------------------------------------------------
# Profiler surface (span counts + strict histogram loading)
# ----------------------------------------------------------------------
class TestProfilerSpanCounts:
    def test_span_count_round_trips(self):
        p = TickProfiler()
        p.record_span(10, 0.5)
        p.record_tick(0.01)
        assert p.span_count == 1
        assert p.tick_count == 11
        clone = TickProfiler.from_dict(p.as_dict())
        assert clone.span_count == 1
        assert clone.tick_count == 11

    def test_per_tick_profile_has_zero_spans(self):
        p = TickProfiler()
        p.record_tick(0.01)
        assert p.span_count == 0
        assert p.as_dict()["spans"] == 0

    def test_from_dict_rejects_mismatched_histogram(self):
        p = TickProfiler()
        p.record_tick(0.01)
        data = p.as_dict()
        data["histogram"] = [1, 2, 3]  # wrong bucket count
        with pytest.raises(MonitoringError, match="buckets"):
            TickProfiler.from_dict(data)

    def test_from_dict_accepts_empty_histogram(self):
        data = TickProfiler().as_dict()
        data["histogram"] = []
        clone = TickProfiler.from_dict(data)
        assert sum(clone.histogram) == 0

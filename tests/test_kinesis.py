"""Unit tests for the simulated Kinesis stream."""

import pytest

from repro.cloud import KinesisConfig, SimKinesisStream, SimCloudWatch
from repro.core.errors import CapacityError, ConfigurationError
from repro.simulation import SimClock


@pytest.fixture
def clock():
    clock = SimClock(tick_seconds=1)
    clock.advance()  # services see t >= 1
    return clock


class TestCapacityModel:
    def test_per_shard_limits_match_paper(self):
        stream = SimKinesisStream(shards=1)
        # "each Shard supports up to 1,000 records/second for writes"
        assert stream.write_capacity_records(0) == 1000
        assert stream.write_capacity_bytes(0) == 1024 * 1024

    def test_capacity_scales_with_shards(self):
        stream = SimKinesisStream(shards=4)
        assert stream.write_capacity_records(0) == 4000

    def test_initial_shards_respect_limits(self):
        with pytest.raises(CapacityError):
            SimKinesisStream(shards=9999, config=KinesisConfig(max_shards=512))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            KinesisConfig(records_per_shard_per_second=0)
        with pytest.raises(ConfigurationError):
            KinesisConfig(min_shards=5, max_shards=2)


class TestPutRecords:
    def test_accepts_within_capacity(self, clock):
        stream = SimKinesisStream(shards=2)
        result = stream.put_records(1500, 1500 * 300, clock)
        assert result.accepted_records == 1500
        assert result.throttled_records == 0

    def test_throttles_above_record_capacity(self, clock):
        stream = SimKinesisStream(shards=1)
        result = stream.put_records(2500, 2500 * 100, clock)
        assert result.accepted_records == 1000
        assert result.throttled_records == 1500

    def test_throttles_on_byte_limit(self, clock):
        stream = SimKinesisStream(shards=1)
        # 500 records but 4 MiB payload: byte limit binds.
        result = stream.put_records(500, 4 * 1024 * 1024, clock)
        assert result.accepted_records == 125
        assert result.accepted_bytes == 1024 * 1024

    def test_zero_put_is_noop(self, clock):
        stream = SimKinesisStream()
        result = stream.put_records(0, 0, clock)
        assert result == type(result)(0, 0, 0, 0)

    def test_rejects_negative_input(self, clock):
        stream = SimKinesisStream()
        with pytest.raises(ConfigurationError):
            stream.put_records(-1, 0, clock)


class TestConsumerBuffer:
    def test_get_records_drains_buffer(self, clock):
        stream = SimKinesisStream(shards=2)
        stream.put_records(1000, 100_000, clock)
        assert stream.backlog_records == 1000
        handed = stream.get_records(600, clock)
        assert handed == 600
        assert stream.backlog_records == 400

    def test_read_limited_by_shard_read_capacity(self, clock):
        config = KinesisConfig(read_records_per_shard_per_second=100)
        stream = SimKinesisStream(shards=1, config=config)
        stream.put_records(1000, 0, clock)
        assert stream.get_records(1000, clock) == 100

    def test_backlog_grows_when_consumer_slow(self, clock):
        stream = SimKinesisStream(shards=2)
        for _ in range(3):
            stream.put_records(1000, 0, clock)
            stream.get_records(400, clock)
            clock.advance()
        assert stream.backlog_records == 1800


class TestResharding:
    def test_reshard_takes_time(self):
        config = KinesisConfig(base_reshard_seconds=30, reshard_seconds_per_shard=15)
        stream = SimKinesisStream(shards=2, config=config)
        stream.update_shard_count(4, now=100)
        # 30 + 2*15 = 60 s of resharding.
        assert stream.shard_count(100) == 2
        assert stream.resharding(159)
        assert stream.shard_count(160) == 4

    def test_reshard_while_in_flight_is_ignored(self):
        stream = SimKinesisStream(shards=2)
        stream.update_shard_count(4, now=0)
        result = stream.update_shard_count(10, now=5)
        assert result == 4  # the in-flight target wins

    def test_target_clamped_to_limits(self):
        stream = SimKinesisStream(shards=2, config=KinesisConfig(max_shards=8))
        assert stream.update_shard_count(100, now=0) == 8

    def test_same_target_is_noop(self):
        stream = SimKinesisStream(shards=2)
        assert stream.update_shard_count(2, now=0) == 2
        assert not stream.resharding(1)


class TestMetrics:
    def test_emits_and_resets_counters(self, clock):
        stream = SimKinesisStream(shards=1)
        cw = SimCloudWatch()
        stream.put_records(1500, 1500 * 100, clock)
        stream.emit_metrics(cw, clock)
        dims = {"StreamName": stream.name}
        assert cw.get_series("AWS/Kinesis", "IncomingRecords", dims)[1] == [1000.0]
        assert cw.get_series("AWS/Kinesis", "WriteProvisionedThroughputExceeded", dims)[1] == [500.0]
        # Counters reset: the next tick reports zero.
        clock.advance()
        stream.emit_metrics(cw, clock)
        assert cw.get_series("AWS/Kinesis", "IncomingRecords", dims)[1] == [1000.0, 0.0]

    def test_utilization_saturates_at_100(self, clock):
        """Overload shows as 100% utilisation + throttle events, the way
        real dashboards present it — not as >100% utilisation."""
        stream = SimKinesisStream(shards=1)
        cw = SimCloudWatch()
        stream.put_records(2000, 0, clock)
        stream.emit_metrics(cw, clock)
        dims = {"StreamName": stream.name}
        util = cw.get_series("AWS/Kinesis", "WriteUtilization", dims)[1][0]
        throttled = cw.get_series(
            "AWS/Kinesis", "WriteProvisionedThroughputExceeded", dims
        )[1][0]
        assert util == pytest.approx(100.0)
        assert throttled == 1000.0

"""Unit tests for the text dashboard and its rendering helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.cloud import SimCloudWatch
from repro.core.errors import MonitoringError
from repro.monitoring import Dashboard, MetricCollector, render_table, sparkline


class TestSparkline:
    def test_constant_series_is_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_ramp_is_monotone(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert line == "".join(sorted(line))

    def test_empty_series_is_blank(self):
        assert sparkline([], width=5) == "     "

    def test_downsamples_to_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=10)) == 2

    def test_width_validation(self):
        with pytest.raises(MonitoringError):
            sparkline([1.0], width=0)

    def test_downsampling_keeps_trailing_samples(self):
        """Regression: float bucket arithmetic used to drop the last
        samples — e.g. 15 samples at width 11 never saw index 14, so a
        trailing spike vanished from the sparkline."""
        values = [0.0] * 14 + [100.0]
        line = sparkline(values, width=11)
        assert line[-1] == "█"

    def test_downsampling_buckets_partition_the_series(self):
        # Bucket means of a constant series are that constant for every
        # width; any dropped or double-counted sample would break this.
        for n in range(2, 40):
            for width in range(1, n):
                assert sparkline([7.5] * n, width=width) == "▁" * width

    def test_downsampled_mean_is_exact_bucket_mean(self):
        # 6 values into 3 buckets of 2: means 1.5, 3.5, 5.5 — strictly
        # increasing, so the cells must be non-decreasing blocks.
        line = sparkline([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], width=3)
        assert len(line) == 3
        assert line == "".join(sorted(line))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_output_length_never_exceeds_width(self, values):
        assert len(sparkline(values, width=16)) <= 16

    @given(st.integers(min_value=17, max_value=200))
    def test_trailing_spike_always_visible(self, n):
        # A spike appended to a flat series lands in the last bucket,
        # which is then the unique maximum: its cell must be the full
        # block whatever (n, width) rounding is in play.
        line = sparkline([1.0] * (n - 1) + [1000.0], width=16)
        assert line[-1] == "█"
        assert set(line[:-1]) == {"▁"}


class TestRenderTable:
    def test_columns_align(self):
        table = render_table(["name", "v"], [["a", "1"], ["longer", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_row_width_validation(self):
        with pytest.raises(MonitoringError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(MonitoringError):
            render_table([], [])


class TestDashboard:
    def _collector(self):
        cw = SimCloudWatch()
        for t in range(10, 310, 10):
            cw.put_metric_data("NS", "M", float(t % 70), t)
        collector = MetricCollector(cw, window=60)
        collector.add_metric("layer.metric", "NS", "M")
        for t in (60, 120, 180, 240, 300):
            collector.collect(t)
        return collector

    def test_render_contains_all_measures(self):
        dashboard = Dashboard(self._collector(), title="Test view")
        output = dashboard.render()
        assert "Test view" in output
        assert "layer.metric" in output
        assert "last" in output and "mean" in output

    def test_render_without_snapshots_raises(self):
        cw = SimCloudWatch()
        collector = MetricCollector(cw)
        collector.add_metric("x", "NS", "M")
        with pytest.raises(MonitoringError):
            Dashboard(collector).render()

    def test_history_parameter_limits_sparkline_window(self):
        dashboard = Dashboard(self._collector())
        # Should not raise with a tiny history.
        assert dashboard.render(history=2)

    def test_recorder_sections_render(self):
        from repro.monitoring.dashboard import render_events
        from repro.observability import ControlDecision, FlightRecorder

        recorder = FlightRecorder()
        recorder.bus.publish(60, "ingestion", "scale.up", {"from": 2, "to": 4})
        recorder.decisions.record(
            ControlDecision(time=60, loop="ingestion", sensed=83.0,
                            state_before=2.0, capacity_before=2.0,
                            raw_command=4.0, applied_command=4.0, gain=0.05)
        )
        output = Dashboard(self._collector(), recorder=recorder).render()
        assert "recent events" in output
        assert "scale.up" in output
        assert "control decisions" in output
        assert "ingestion" in output
        # The standalone event renderer handles the empty case too.
        assert render_events([]) == "(no events recorded)"
        with pytest.raises(MonitoringError):
            render_events([], limit=0)

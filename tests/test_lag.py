"""Unit tests for lagged cross-correlation."""

import math

import pytest

from repro.core.errors import RegressionError
from repro.dependency import cross_correlation


def sine(n, phase=0):
    return [math.sin(2 * math.pi * (i + phase) / 50) for i in range(n)]


class TestCrossCorrelation:
    def test_zero_lag_matches_pearson(self):
        x = sine(200)
        result = cross_correlation(x, x, max_lag=0)
        assert result.lags == (0,)
        assert result.correlations[0] == pytest.approx(1.0)

    def test_detects_known_lag(self):
        x = sine(400)
        y = sine(400, phase=-5)  # y lags x by 5 samples
        result = cross_correlation(x, y, max_lag=10)
        lag, r = result.best()
        assert lag == 5
        assert r == pytest.approx(1.0, abs=1e-6)

    def test_detects_leading_series(self):
        x = sine(400, phase=-5)
        y = sine(400)
        lag, _r = cross_correlation(x, y, max_lag=10).best()
        assert lag == -5

    def test_at_accessor(self):
        x = sine(100)
        result = cross_correlation(x, x, max_lag=3)
        assert result.at(0) == pytest.approx(1.0)
        with pytest.raises(RegressionError):
            result.at(99)

    def test_lag_range_is_symmetric(self):
        result = cross_correlation(sine(100), sine(100), max_lag=4)
        assert result.lags == tuple(range(-4, 5))

    def test_validation(self):
        with pytest.raises(RegressionError):
            cross_correlation([1, 2, 3], [1, 2], max_lag=0)
        with pytest.raises(RegressionError):
            cross_correlation(sine(10), sine(10), max_lag=-1)
        with pytest.raises(RegressionError):
            cross_correlation(sine(5), sine(5), max_lag=4)  # too little overlap

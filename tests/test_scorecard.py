"""Run scorecards: field extraction, serialisation round-trips, and the
regression-gate comparison semantics (tight, bidirectional, wall-clock
exempt)."""

import dataclasses
import json

import pytest

from repro.analysis.scorecard import (
    SMOKE_SCENARIOS,
    WALL_CLOCK_FIELDS,
    FleetScorecard,
    RunScorecard,
    run_smoke_scenario,
)
from repro.core.errors import ConfigurationError

#: Short horizon for the in-test smoke runs; the committed baselines in
#: ``results/`` use the full SMOKE_DURATION and gate the real numbers.
DURATION = 1800


@pytest.fixture(scope="module")
def steady():
    return run_smoke_scenario("steady", duration=DURATION)


@pytest.fixture(scope="module")
def chaos():
    return run_smoke_scenario("chaos", duration=DURATION)


# ----------------------------------------------------------------------
# from_result / run_smoke_scenario field extraction
# ----------------------------------------------------------------------
class TestSmokeScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scorecard scenario"):
            run_smoke_scenario("nope")

    def test_steady_fields_populated(self, steady):
        assert steady.name == "steady"
        assert steady.duration_seconds == DURATION
        assert set(steady.slo_violation_pct) == {"ingestion", "analytics", "storage"}
        assert set(steady.cost_by_layer) >= {"ingestion", "analytics", "storage"}
        assert steady.total_cost == pytest.approx(
            sum(steady.cost_by_layer.values()), rel=1e-6
        )
        assert steady.total_cost > 0
        # Every layer loop decides every control period.
        assert set(steady.decisions) == {"ingestion", "analytics", "storage"}
        assert all(n == DURATION // 60 for n in steady.decisions.values())
        assert all(
            steady.actuations[k] <= steady.decisions[k] for k in steady.actuations
        )
        assert steady.mttr_by_fault == {}
        assert steady.invariants_ok

    def test_steady_chains_all_close(self, steady):
        assert steady.causal_chains > 0
        assert steady.causal_chains_closed == steady.causal_chains

    def test_chaos_scores_every_fault(self, chaos):
        # One MTTR entry per injected fault, keyed kind@start.
        assert len(chaos.mttr_by_fault) == 3
        assert all("@" in key for key in chaos.mttr_by_fault)
        assert chaos.causal_chains > steady_chains_lower_bound(chaos)

    def test_scenario_registry_matches_baselines(self):
        assert SMOKE_SCENARIOS == ("steady", "chaos", "fleet")


def steady_chains_lower_bound(chaos: RunScorecard) -> int:
    # At minimum one chain per decision that acted, plus the faults.
    return sum(chaos.actuations.values())


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
class TestSerialisation:
    def test_json_round_trip_is_lossless(self, steady):
        clone = RunScorecard.from_dict(json.loads(steady.to_json()))
        assert clone == steady

    def test_from_json_file(self, steady, tmp_path):
        path = tmp_path / "card.json"
        path.write_text(steady.to_json())
        assert RunScorecard.from_json_file(path) == steady

    def test_to_dict_covers_every_field(self, steady):
        d = steady.to_dict()
        assert set(d) == {f.name for f in dataclasses.fields(RunScorecard)}

    def test_summary_renders_key_numbers(self, chaos):
        text = chaos.summary()
        assert f"{chaos.total_cost:.4f}" in text
        assert "causal chains" in text
        assert "mttr per fault" in text


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
class TestCompare:
    def test_identical_scorecards_pass(self, steady):
        assert steady.compare(steady) == []

    def test_scalar_drift_is_named(self, steady):
        drifted = dataclasses.replace(steady, total_cost=steady.total_cost * 1.01)
        messages = steady.compare(drifted)
        assert any(m.startswith("total_cost:") for m in messages)

    def test_improvement_fails_too(self, steady):
        """A cheaper run without a regenerated baseline is drift."""
        drifted = dataclasses.replace(steady, total_cost=steady.total_cost * 0.5)
        assert steady.compare(drifted)

    def test_dict_drift_names_the_key(self, steady):
        costs = dict(steady.cost_by_layer)
        costs["storage"] = costs["storage"] + 1.0
        drifted = dataclasses.replace(steady, cost_by_layer=costs)
        messages = steady.compare(drifted)
        assert any(m.startswith("cost_by_layer.storage:") for m in messages)

    def test_missing_dict_key_is_drift(self, steady):
        costs = dict(steady.cost_by_layer)
        costs.pop("storage")
        drifted = dataclasses.replace(steady, cost_by_layer=costs)
        assert any(
            "cost_by_layer.storage" in m for m in drifted.compare(steady)
        )

    def test_field_absent_from_baseline_is_drift(self, steady):
        """A field the current card has but the baseline lacks (future
        schema additions, hand-edited baselines) must surface as drift,
        not be silently skipped."""

        class LegacyCard(RunScorecard):
            def to_dict(self):
                trimmed = super().to_dict()
                del trimmed["breaker_openings"]
                del trimmed["clamps"]
                return trimmed

        fields = {f.name: getattr(steady, f.name) for f in dataclasses.fields(steady)}
        legacy = LegacyCard(**fields)
        messages = steady.compare(legacy)
        assert any(m.startswith("breaker_openings:") for m in messages)
        # Dict-valued fields drift per sub-key.
        assert any(m.startswith("clamps.") for m in messages)

    def test_wall_clock_fields_exempt(self, steady):
        drifted = dataclasses.replace(
            steady, wall_seconds=steady.wall_seconds + 100.0, ticks_per_second=1.0
        )
        assert steady.compare(drifted) == []
        assert WALL_CLOCK_FIELDS == {
            "wall_seconds", "ticks_per_second", "flow_wall_seconds"
        }

    def test_mttr_none_vs_number_is_drift(self, chaos):
        mttr = dict(chaos.mttr_by_fault)
        key = next(iter(mttr))
        mttr[key] = None
        drifted = dataclasses.replace(chaos, mttr_by_fault=mttr)
        assert any(key in m for m in chaos.compare(drifted))


# ----------------------------------------------------------------------
# Fleet scorecards
# ----------------------------------------------------------------------
class TestFleetScorecard:
    @pytest.fixture(scope="class")
    def fleet(self):
        return run_smoke_scenario("fleet", duration=DURATION)

    def test_fields_populated(self, fleet):
        assert fleet.name == "fleet"
        assert fleet.duration_seconds == DURATION
        assert sorted(fleet.flows) == ["flow0", "flow1", "flow2"]
        assert fleet.coordinator_passes == DURATION // 300
        assert fleet.total_cost == pytest.approx(
            sum(card.total_cost for card in fleet.flows.values()), rel=1e-6
        )
        for card in fleet.flows.values():
            assert card.invariants_ok

    def test_json_round_trip_is_lossless(self, fleet):
        clone = FleetScorecard.from_dict(json.loads(fleet.to_json()))
        assert clone == fleet

    def test_from_json_file(self, fleet, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(fleet.to_json())
        assert FleetScorecard.from_json_file(path) == fleet

    def test_identical_cards_pass(self, fleet):
        assert fleet.compare(fleet) == []

    def test_fleet_level_drift_is_named(self, fleet):
        drifted = dataclasses.replace(fleet, cap_retargets=fleet.cap_retargets + 1)
        messages = drifted.compare(fleet)
        assert any("cap_retargets" in m for m in messages)

    def test_per_flow_drift_is_prefixed(self, fleet):
        flows = dict(fleet.flows)
        flows["flow1"] = dataclasses.replace(
            flows["flow1"], retry_attempts=flows["flow1"].retry_attempts + 5
        )
        drifted = dataclasses.replace(fleet, flows=flows)
        messages = drifted.compare(fleet)
        assert any(m.startswith("flow1.retry_attempts") for m in messages)

    def test_missing_flow_is_drift(self, fleet):
        flows = dict(fleet.flows)
        flows.pop("flow2")
        drifted = dataclasses.replace(fleet, flows=flows)
        messages = drifted.compare(fleet)
        assert any("flows.flow2" in m for m in messages)

    def test_denial_drift_is_named(self, fleet):
        denials = {**fleet.denials, "flow0": {"instances": 999}}
        drifted = dataclasses.replace(fleet, denials=denials)
        messages = drifted.compare(fleet)
        assert any(m.startswith("denials.flow0.instances") for m in messages)

    def test_wall_clock_exempt(self, fleet):
        drifted = dataclasses.replace(fleet, wall_seconds=fleet.wall_seconds + 100)
        assert drifted.compare(fleet) == []

    def test_committed_baseline_loads_and_has_expected_shape(self):
        card = FleetScorecard.from_json_file("results/SCORECARD_fleet_smoke.json")
        assert card.name == "fleet"
        assert sorted(card.flows) == ["flow0", "flow1", "flow2"]
        assert card.coordinator_passes > 0


# ----------------------------------------------------------------------
# Scenario-catalog guardrails: the fast path runs clean, and the
# exactness firewall extends to catalog cards and matrices.
# ----------------------------------------------------------------------
class TestCatalogExactness:
    @pytest.fixture(scope="class")
    def fast_matrix(self):
        from repro.scenarios import catalog, run_catalog

        return run_catalog(catalog("smoke"), variant="smoke", jobs=1, fast=True)

    def test_every_catalog_scenario_runs_clean_under_fast(self, fast_matrix):
        from repro.scenarios import CATALOG_NAMES

        assert sorted(fast_matrix.entries) == sorted(CATALOG_NAMES)
        assert fast_matrix.exact is False
        for name, entry in fast_matrix.entries.items():
            assert entry.card.exact is False, name
            assert entry.card.invariants_ok, name
            assert entry.card.total_cost > 0, name

    def test_fast_card_refuses_exact_baseline(self, fast_matrix):
        from repro.scenarios import catalog_scenario, run_scenario

        exact_card = run_scenario(catalog_scenario("flash-crowd-throttle-storm"))
        fast_card = fast_matrix.entries["flash-crowd-throttle-storm"].card
        with pytest.raises(ConfigurationError, match="exact=False.*exact=True"):
            fast_card.compare(exact_card)
        with pytest.raises(ConfigurationError, match="exact=True.*exact=False"):
            exact_card.compare(fast_card)

    def test_fast_matrix_refuses_exact_baseline(self, fast_matrix):
        from repro.scenarios import CatalogMatrix

        baseline = CatalogMatrix.from_json_file("results/SCORECARD_catalog.json")
        with pytest.raises(ConfigurationError, match="not bit-comparable"):
            fast_matrix.compare(baseline)
        with pytest.raises(ConfigurationError, match="not bit-comparable"):
            baseline.compare(fast_matrix)

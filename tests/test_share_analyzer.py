"""Unit tests for the resource share analyzer (Eq. 3-5, Fig. 4)."""

import pytest

from repro.cloud.pricing import PriceBook, ResourcePrice
from repro.core.errors import OptimizationError
from repro.core.flow import LayerKind
from repro.optimization import ResourceShareAnalyzer, ShareConstraint


def paper_constraints():
    """The Sec. 3.2 example: 5*r_A >= r_I, 2*r_A <= r_I, 2*r_I <= r_S."""
    return [
        ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE),
    ]


def small_flow():
    """A flow with tight bounds so the search space is small and fast."""
    from repro.core.flow import FlowSpec, LayerSpec

    return FlowSpec(
        name="test-flow",
        layers=(
            LayerSpec(LayerKind.INGESTION, "Kinesis", "kinesis.shard", "Shards", 1, 32),
            LayerSpec(LayerKind.ANALYTICS, "Storm", "ec2.m4.large", "VMs", 1, 16),
            LayerSpec(LayerKind.STORAGE, "DynamoDB", "dynamodb.wcu", "WCU", 1, 2000),
        ),
    )


class TestShareConstraint:
    def test_at_least(self):
        c = ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION)
        assert c.satisfied({LayerKind.ANALYTICS: 2, LayerKind.INGESTION: 10, LayerKind.STORAGE: 0})
        assert not c.satisfied({LayerKind.ANALYTICS: 1, LayerKind.INGESTION: 10, LayerKind.STORAGE: 0})

    def test_at_most(self):
        c = ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE)
        assert c.satisfied({LayerKind.INGESTION: 5, LayerKind.STORAGE: 10, LayerKind.ANALYTICS: 0})
        assert not c.satisfied({LayerKind.INGESTION: 6, LayerKind.STORAGE: 10, LayerKind.ANALYTICS: 0})

    def test_dependency_band_brackets_the_line(self):
        lower, upper = ShareConstraint.dependency_band(
            LayerKind.ANALYTICS, slope=0.5, intercept=1.0, source=LayerKind.INGESTION, tolerance=0.5
        )
        on_line = {LayerKind.ANALYTICS: 6.0, LayerKind.INGESTION: 10.0, LayerKind.STORAGE: 0}
        above = {LayerKind.ANALYTICS: 7.0, LayerKind.INGESTION: 10.0, LayerKind.STORAGE: 0}
        below = {LayerKind.ANALYTICS: 5.0, LayerKind.INGESTION: 10.0, LayerKind.STORAGE: 0}
        for constraint in (lower, upper):
            assert constraint.satisfied(on_line)
        assert not upper.satisfied(above)
        assert lower.satisfied(above)
        assert not lower.satisfied(below)

    def test_dependency_band_rejects_negative_tolerance(self):
        with pytest.raises(OptimizationError):
            ShareConstraint.dependency_band(
                LayerKind.ANALYTICS, 1.0, 0.0, LayerKind.INGESTION, tolerance=-1.0
            )

    def test_describe_mentions_layers(self):
        c = ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION)
        assert "r_A" in c.describe() and "r_I" in c.describe()


class TestResourceShareAnalyzer:
    @pytest.fixture(scope="class")
    def result(self):
        analyzer = ResourceShareAnalyzer(small_flow(), constraints=paper_constraints())
        return analyzer.analyze(budget_per_hour=2.0, population_size=80, generations=120, seed=0)

    def test_finds_a_pareto_set(self, result):
        assert len(result) >= 3

    def test_all_solutions_feasible(self, result):
        analyzer = ResourceShareAnalyzer(small_flow(), constraints=paper_constraints())
        for solution in result.solutions:
            shares = {k: float(v) for k, v in solution.shares}
            for constraint in paper_constraints():
                assert constraint.satisfied(shares, slack=1e-6), constraint.describe()
            assert analyzer.hourly_cost(shares) <= 2.0 + 1e-9

    def test_budget_is_binding_somewhere(self, result):
        # At least one Pareto solution should spend most of the budget —
        # otherwise every layer could still be raised.
        assert max(s.hourly_cost for s in result.solutions) > 1.5

    def test_solutions_mutually_nondominated(self, result):
        for a in result.solutions:
            for b in result.solutions:
                if a is b:
                    continue
                dominated = (
                    b.ingestion >= a.ingestion
                    and b.analytics >= a.analytics
                    and b.storage >= a.storage
                    and (b.ingestion, b.analytics, b.storage)
                    != (a.ingestion, a.analytics, a.storage)
                )
                assert not dominated, f"{a} dominated by {b}"

    def test_table_renders_all_solutions(self, result):
        table = result.table()
        assert "Shards" in table and "VMs" in table and "WCU" in table
        assert len(table.splitlines()) == len(result) + 2

    def test_pick_random_is_deterministic_per_seed(self, result):
        assert result.pick("random", seed=1) == result.pick("random", seed=1)

    def test_pick_cheapest(self, result):
        cheapest = result.pick("cheapest")
        assert cheapest.hourly_cost == min(s.hourly_cost for s in result.solutions)

    def test_pick_layer_max(self, result):
        top = result.pick("max:storage")
        assert top.storage == max(s.storage for s in result.solutions)

    def test_pick_balanced_returns_member(self, result):
        assert result.pick("balanced") in result.solutions

    def test_pick_unknown_strategy(self, result):
        with pytest.raises(OptimizationError):
            result.pick("magic")

    def test_hourly_cost_uses_price_book(self):
        book = PriceBook({
            "kinesis.shard": ResourcePrice("kinesis.shard", hourly=1.0),
            "ec2.m4.large": ResourcePrice("ec2.m4.large", hourly=2.0),
            "dynamodb.wcu": ResourcePrice("dynamodb.wcu", hourly=0.5),
        })
        analyzer = ResourceShareAnalyzer(small_flow(), price_book=book)
        cost = analyzer.hourly_cost(
            {LayerKind.INGESTION: 2, LayerKind.ANALYTICS: 3, LayerKind.STORAGE: 4}
        )
        assert cost == pytest.approx(2 * 1.0 + 3 * 2.0 + 4 * 0.5)

    def test_budget_must_be_positive(self):
        analyzer = ResourceShareAnalyzer(small_flow())
        with pytest.raises(OptimizationError):
            analyzer.analyze(budget_per_hour=0.0)

    def test_empty_front_pick_raises(self):
        from repro.optimization.share_analyzer import ShareAnalysisResult

        empty = ShareAnalysisResult(solutions=[], budget_per_hour=1.0, flow=small_flow())
        with pytest.raises(OptimizationError):
            empty.pick()

    def test_add_constraint_after_construction(self):
        analyzer = ResourceShareAnalyzer(small_flow())
        analyzer.add_constraint(
            ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE)
        )
        assert len(analyzer.constraints) == 1

"""Tests for multi-source dependency fitting and markdown reports."""

import numpy as np
import pytest

from repro.analysis import ComparisonReport
from repro.core.errors import RegressionError
from repro.core.flow import LayerKind
from repro.dependency import WorkloadDependencyAnalyzer
from repro.dependency.analyzer import MetricRef
from repro.workload import Trace


class TestFitMulti:
    def _analyzer(self):
        rng = np.random.default_rng(0)
        n = 300
        times = [60 * (i + 1) for i in range(n)]
        records = rng.uniform(100, 2000, size=n)
        payload = rng.uniform(1e4, 1e6, size=n)
        cpu = 0.01 * records + 2e-6 * payload + 5.0 + rng.normal(0, 0.2, size=n)
        analyzer = WorkloadDependencyAnalyzer()
        analyzer.add_series(LayerKind.INGESTION, "Records",
                            Trace.from_series("r", times, records))
        analyzer.add_series(LayerKind.INGESTION, "Bytes",
                            Trace.from_series("b", times, payload))
        analyzer.add_series(LayerKind.ANALYTICS, "CPU",
                            Trace.from_series("c", times, cpu))
        return analyzer

    def test_recovers_joint_coefficients(self):
        analyzer = self._analyzer()
        result = analyzer.fit_multi(
            [MetricRef(LayerKind.INGESTION, "Records"), MetricRef(LayerKind.INGESTION, "Bytes")],
            MetricRef(LayerKind.ANALYTICS, "CPU"),
        )
        assert result.coefficients[0] == pytest.approx(0.01, rel=0.05)
        assert result.coefficients[1] == pytest.approx(2e-6, rel=0.05)
        assert result.intercept == pytest.approx(5.0, abs=0.3)
        assert result.r_squared > 0.99

    def test_validation(self):
        analyzer = self._analyzer()
        cpu = MetricRef(LayerKind.ANALYTICS, "CPU")
        with pytest.raises(RegressionError):
            analyzer.fit_multi([], cpu)
        with pytest.raises(RegressionError):
            analyzer.fit_multi([cpu], cpu)

    def test_misaligned_sources_rejected(self):
        analyzer = self._analyzer()
        odd = Trace("odd", [(7, 1.0), (13, 2.0), (19, 3.0)])
        ref = analyzer.add_series(LayerKind.STORAGE, "Odd", odd)
        with pytest.raises(RegressionError, match="aligned"):
            analyzer.fit_multi([ref], MetricRef(LayerKind.ANALYTICS, "CPU"))


class TestMarkdownReport:
    def test_render_markdown(self):
        report = ComparisonReport("Controllers", ["violations", "settle"])
        report.add_row("adaptive", [0.02, 240.0])
        report.add_row("rule", [0.12, None])
        md = report.render_markdown()
        assert md.startswith("### Controllers")
        assert "| adaptive | 0.020 | 240.000 |" in md
        assert "| rule | 0.120 | — |" in md
        # Header separator row present.
        assert "|---|---|---|" in md

"""Failure-injection tests: controllers must survive infrastructure loss."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.cloud import EC2Config, SimEC2Fleet
from repro.core.errors import SimulationError
from repro.simulation import SimClock, derive_rng
from repro.simulation.faults import RandomVMFaults, ScheduledVMFaults
from repro.workload import ConstantRate


class TestFailInstance:
    def test_failed_instance_stops_serving_and_billing(self):
        fleet = SimEC2Fleet(initial_instances=3)
        victim = fleet.instances(0)[0].instance_id
        assert fleet.fail_instance(victim, now=100)
        assert fleet.running_count(100) == 2
        assert fleet.billable_count(100) == 2

    def test_unknown_or_dead_instance_returns_false(self):
        fleet = SimEC2Fleet(initial_instances=1)
        assert not fleet.fail_instance("i-999999", now=0)
        victim = fleet.instances(0)[0].instance_id
        assert fleet.fail_instance(victim, now=10)
        assert not fleet.fail_instance(victim, now=20)


class TestScheduledVMFaults:
    def test_kills_at_scheduled_times(self):
        fleet = SimEC2Fleet(initial_instances=3)
        faults = ScheduledVMFaults(fleet, kill_times=[5, 10])
        clock = SimClock()
        for _ in range(12):
            clock.advance()
            faults.on_tick(clock)
        assert fleet.running_count(12) == 1
        assert [e.time for e in faults.events] == [5, 10]

    def test_kills_oldest_running_instance(self):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=0), initial_instances=1)
        fleet.set_desired(2, now=3)  # the newer instance launches at t=3
        faults = ScheduledVMFaults(fleet, kill_times=[5])
        clock = SimClock()
        for _ in range(6):
            clock.advance()
            faults.on_tick(clock)
        survivors = fleet.instances(6)
        assert len(survivors) == 1
        assert survivors[0].launched_at == 3

    def test_no_victims_left(self):
        fleet = SimEC2Fleet(initial_instances=1)
        faults = ScheduledVMFaults(fleet, kill_times=[1, 2])
        clock = SimClock()
        for _ in range(3):
            clock.advance()
            faults.on_tick(clock)
        # Only one kill possible; the second finds no running instance.
        assert len(faults.events) == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            ScheduledVMFaults(SimEC2Fleet(), kill_times=[-1])


class TestRandomVMFaults:
    def test_seeded_and_roughly_exponential(self):
        fleet = SimEC2Fleet(config=EC2Config(max_instances=512), initial_instances=200)
        faults = RandomVMFaults(fleet, derive_rng(5, "faults"), mtbf_seconds=1000.0)
        clock = SimClock()
        for _ in range(100):
            clock.advance()
            faults.on_tick(clock)
        # ~200 instances * 100 ticks / 1000 s MTBF ~= 20 expected kills.
        assert 5 <= len(faults.events) <= 40

    def test_determinism(self):
        def run():
            fleet = SimEC2Fleet(initial_instances=50)
            faults = RandomVMFaults(fleet, derive_rng(5, "faults"), mtbf_seconds=500.0)
            clock = SimClock()
            for _ in range(50):
                clock.advance()
                faults.on_tick(clock)
            return [(e.time, e.instance_id) for e in faults.events]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(SimulationError):
            RandomVMFaults(SimEC2Fleet(), derive_rng(0, "x"), mtbf_seconds=0)


class TestControllerRecovery:
    def test_adaptive_controller_replaces_failed_vms(self):
        """Kill two analytics VMs mid-run; the CPU controller must
        scale the fleet back and the flow must end healthy."""
        from repro.cloud.storm import StormConfig

        manager = (
            FlowBuilder("faulty", seed=17)
            .ingestion(shards=4)
            .analytics(vms=5, storm=StormConfig(records_per_vm_per_second=1000))
            .storage(write_units=300)
            .workload(ConstantRate(2800))  # wants ~4-5 VMs at 60% CPU
            .control(LayerKind.ANALYTICS, style="adaptive", reference=60.0)
            .build()
        )
        faults = ScheduledVMFaults(manager.fleet, kill_times=[1800, 1801])
        manager.engine.add_component(faults)
        result = manager.run(5400)

        assert len(faults.events) == 2
        vms = result.trace(
            "Custom/Storm", "RunningVMs",
            dimensions=result.layer_dimensions[LayerKind.ANALYTICS],
        )
        steady_before = vms.slice(1200, 1800).mean()
        # Capacity dipped right after the failures...
        assert vms.slice(1810, 2100).minimum() <= steady_before - 1.9
        # ...and was restored by the controller before the end.
        assert vms.slice(4200, 5400).mean() >= steady_before - 1.0
        # The flow ends healthy: no persistent tuple backlog and CPU
        # back near the reference.
        pending = result.trace(
            "Custom/Storm", "PendingTuples",
            dimensions=result.layer_dimensions[LayerKind.ANALYTICS],
        )
        assert pending.values[-1] == 0.0
        cpu_tail = result.utilization_trace(LayerKind.ANALYTICS).slice(4200, 5400)
        assert cpu_tail.mean() < 85.0


class TestScheduledFaultCursor:
    def test_duplicate_and_same_tick_kill_times(self):
        """Duplicate entries each claim a victim at the same tick."""
        fleet = SimEC2Fleet(initial_instances=3)
        faults = ScheduledVMFaults(fleet, kill_times=[5, 5, 6])
        clock = SimClock()
        for _ in range(8):
            clock.advance()
            faults.on_tick(clock)
        assert [e.time for e in faults.events] == [5, 5, 6]
        assert fleet.running_count(8) == 0

    def test_unsorted_schedule_fires_in_time_order(self):
        fleet = SimEC2Fleet(initial_instances=3)
        faults = ScheduledVMFaults(fleet, kill_times=[9, 2, 6])
        clock = SimClock()
        for _ in range(10):
            clock.advance()
            faults.on_tick(clock)
        assert [e.time for e in faults.events] == [2, 6, 9]

    def test_cursor_never_rescans_consumed_entries(self):
        """The due-time walk is an index cursor, not repeated pop(0)."""
        fleet = SimEC2Fleet(config=EC2Config(max_instances=512), initial_instances=300)
        faults = ScheduledVMFaults(fleet, kill_times=list(range(1, 251)))
        clock = SimClock()
        for _ in range(260):
            clock.advance()
            faults.on_tick(clock)
        assert len(faults.events) == 250
        assert faults._cursor == 250
        assert faults._schedule == sorted(range(1, 251))  # untouched


class TestFaultSpanEquivalence:
    """Registering VM fault injectors must not disable span execution,
    and span runs must stay bit-identical to per-tick runs."""

    @staticmethod
    def _managed(spans, make_faults):
        manager = (
            FlowBuilder("faults-span", seed=17)
            .ingestion(shards=3)
            .analytics(vms=4)
            .storage(write_units=300)
            .workload(ConstantRate(2200))
            .control(LayerKind.ANALYTICS, style="adaptive", reference=60.0, period=30)
            .spans(spans)
            .build()
        )
        manager.engine.add_component(make_faults(manager.fleet))
        result = manager.run(1800)
        return manager, result

    def test_scheduled_faults_span_equivalence(self):
        from tests.test_span_equivalence import _costs, _raw_metrics, _snapshots

        def make(fleet):
            return ScheduledVMFaults(fleet, kill_times=[400, 401, 900])

        m_tick, r_tick = self._managed(False, make)
        m_span, r_span = self._managed(True, make)
        assert m_tick.engine.last_run_used_spans is False
        assert m_span.engine.last_run_used_spans is True
        assert _raw_metrics(r_span) == _raw_metrics(r_tick)
        assert _costs(r_span) == _costs(r_tick)
        assert _snapshots(r_span) == _snapshots(r_tick)

    def test_random_faults_span_equivalence(self):
        from tests.test_span_equivalence import _costs, _raw_metrics

        def make(fleet):
            return RandomVMFaults(fleet, derive_rng(23, "faults"), mtbf_seconds=30_000.0)

        m_tick, r_tick = self._managed(False, make)
        m_span, r_span = self._managed(True, make)
        assert m_span.engine.last_run_used_spans is True
        assert _raw_metrics(r_span) == _raw_metrics(r_tick)
        assert _costs(r_span) == _costs(r_tick)

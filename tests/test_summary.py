"""Tests for run summaries, correlation matrix and the weekly pattern."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.analysis import summarize_run
from repro.core.errors import ConfigurationError, RegressionError
from repro.workload import ConstantRate, WeeklyRate


class TestRunSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        result = (
            FlowBuilder("summary", seed=3)
            .workload(ConstantRate(800))
            .control_all(style="adaptive")
            .build()
            .run(1800)
        )
        return summarize_run(result)

    def test_one_row_per_layer(self, summary):
        assert {layer.kind for layer in summary.layers} == set(LayerKind)

    def test_layer_lookup(self, summary):
        layer = summary.layer(LayerKind.INGESTION)
        assert layer.capacity_min >= 1
        assert 0.0 <= layer.violation_rate <= 1.0

    def test_costs_add_up_to_scaled_total(self, summary):
        layer_costs = sum(layer.cost for layer in summary.layers)
        # The total also includes the read-capacity meter, so it is at
        # least the sum of the three layer meters.
        assert summary.total_cost >= layer_costs

    def test_render_contains_all_layers(self, summary):
        text = summary.render()
        for kind in LayerKind:
            assert kind.name.lower() in text
        assert "total cost" in text

    def test_uncontrolled_run_reports_zero_actions(self):
        result = (
            FlowBuilder("static", seed=3)
            .workload(ConstantRate(500))
            .build()
            .run(600)
        )
        summary = summarize_run(result)
        assert all(layer.controller_actions == 0 for layer in summary.layers)


class TestCorrelationMatrix:
    def test_renders_all_pairs(self):
        import numpy as np

        from repro.dependency import WorkloadDependencyAnalyzer
        from repro.workload import Trace

        rng = np.random.default_rng(0)
        times = [60 * (i + 1) for i in range(100)]
        x = rng.uniform(0, 100, size=100)
        analyzer = WorkloadDependencyAnalyzer()
        analyzer.add_series(LayerKind.INGESTION, "A", Trace.from_series("a", times, x))
        analyzer.add_series(LayerKind.ANALYTICS, "B", Trace.from_series("b", times, 2 * x))
        analyzer.add_series(
            LayerKind.STORAGE, "C",
            Trace.from_series("c", times, rng.uniform(0, 1, size=100)),
        )
        matrix = analyzer.correlation_matrix()
        assert "1.000" in matrix
        assert "+1.000" in matrix  # the A~B pair
        assert matrix.count("\n") == 3  # header + three rows

    def test_needs_two_series(self):
        from repro.dependency import WorkloadDependencyAnalyzer

        with pytest.raises(RegressionError):
            WorkloadDependencyAnalyzer().correlation_matrix()


class TestWeeklyRate:
    def test_day_factors_apply(self):
        weekly = WeeklyRate(ConstantRate(100), [1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.2])
        assert weekly.rate(0) == 100.0                       # day 0
        assert weekly.rate(5 * 86400 + 100) == 50.0          # day 5
        assert weekly.rate(6 * 86400) == pytest.approx(20.0) # day 6
        assert weekly.rate(7 * 86400) == 100.0               # wraps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WeeklyRate(ConstantRate(1), [1.0] * 6)
        with pytest.raises(ConfigurationError):
            WeeklyRate(ConstantRate(1), [1.0] * 6 + [-1.0])

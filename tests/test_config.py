"""Unit tests for controller configuration factories."""

import pytest

from repro.control import (
    AdaptiveGainController,
    FixedGainController,
    QuasiAdaptiveController,
    RuleBasedController,
)
from repro.core import LayerControlConfig, LayerKind, make_controller
from repro.core.config import (
    CONTROLLER_FACTORIES,
    default_adaptive_controller,
)
from repro.core.errors import ConfigurationError


class TestFactories:
    @pytest.mark.parametrize("kind", list(LayerKind))
    def test_adaptive_for_every_layer(self, kind):
        controller = default_adaptive_controller(kind)
        assert isinstance(controller, AdaptiveGainController)
        assert controller.config.l_min < controller.config.l_max
        assert controller.memory is not None

    def test_adaptive_memory_can_be_disabled(self):
        controller = default_adaptive_controller(LayerKind.ANALYTICS, use_memory=False)
        assert controller.memory is None

    @pytest.mark.parametrize("style,cls", [
        ("adaptive", AdaptiveGainController),
        ("fixed", FixedGainController),
        ("quasi", QuasiAdaptiveController),
        ("rule", RuleBasedController),
    ])
    def test_make_controller_styles(self, style, cls):
        controller = make_controller(style, LayerKind.STORAGE, reference=70.0)
        assert isinstance(controller, cls)

    def test_all_registered_styles_work_for_all_layers(self):
        for style in CONTROLLER_FACTORIES:
            for kind in LayerKind:
                assert make_controller(style, kind) is not None

    def test_unknown_style_rejected(self):
        with pytest.raises(ConfigurationError):
            make_controller("pid", LayerKind.ANALYTICS)

    def test_reference_propagates(self):
        controller = make_controller("adaptive", LayerKind.ANALYTICS, reference=45.0)
        assert controller.config.reference == 45.0


class TestLayerControlConfig:
    def test_defaults(self):
        config = LayerControlConfig(controller=make_controller("adaptive", LayerKind.ANALYTICS))
        assert config.period == 60
        assert config.window == 60

    def test_validation(self):
        controller = make_controller("adaptive", LayerKind.ANALYTICS)
        with pytest.raises(ConfigurationError):
            LayerControlConfig(controller=controller, period=0)
        with pytest.raises(ConfigurationError):
            LayerControlConfig(controller=controller, window=-1)

"""Tests for time-windowed share schedules (paper Sec. 2)."""

import pytest

from repro import FlowBuilder, LayerKind
from repro.core.errors import ConfigurationError, OptimizationError
from repro.core.flow import FlowSpec, LayerSpec, clickstream_flow_spec
from repro.optimization import (
    BudgetWindow,
    ResourceShareAnalyzer,
    ScheduledShare,
    ShareSchedule,
    analyze_windows,
)
from repro.optimization.share_analyzer import ResourceShare
from repro.workload import ConstantRate


def share(i, a, s, cost=1.0):
    return ResourceShare(
        shares=((LayerKind.INGESTION, i), (LayerKind.ANALYTICS, a), (LayerKind.STORAGE, s)),
        hourly_cost=cost,
    )


def entry(start, end, budget, picked):
    from repro.optimization.share_analyzer import ShareAnalysisResult

    result = ShareAnalysisResult(
        solutions=[picked], budget_per_hour=budget, flow=clickstream_flow_spec()
    )
    return ScheduledShare(window=BudgetWindow(start, end, budget), result=result, picked=picked)


class TestBudgetWindow:
    def test_contains(self):
        window = BudgetWindow(0, 3600, 1.0)
        assert window.contains(0)
        assert window.contains(3599)
        assert not window.contains(3600)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            BudgetWindow(100, 100, 1.0)
        with pytest.raises(OptimizationError):
            BudgetWindow(0, 100, 0.0)


class TestShareSchedule:
    def test_share_at_picks_covering_window(self):
        schedule = ShareSchedule([
            entry(0, 3600, 0.5, share(2, 1, 100)),
            entry(3600, 7200, 2.0, share(8, 4, 400)),
        ])
        assert schedule.share_at(1800).ingestion == 2
        assert schedule.share_at(3600).ingestion == 8
        # Edges hold the nearest window's plan.
        assert schedule.share_at(99999).ingestion == 8

    def test_bounds_at(self):
        schedule = ShareSchedule([entry(0, 3600, 1.0, share(3, 2, 200))])
        assert schedule.bounds_at(100) == {
            LayerKind.INGESTION: 3,
            LayerKind.ANALYTICS: 2,
            LayerKind.STORAGE: 200,
        }

    def test_rejects_overlap_and_gap(self):
        with pytest.raises(OptimizationError, match="overlap"):
            ShareSchedule([
                entry(0, 3600, 1.0, share(1, 1, 1)),
                entry(1800, 7200, 1.0, share(1, 1, 1)),
            ])
        with pytest.raises(OptimizationError, match="gap"):
            ShareSchedule([
                entry(0, 3600, 1.0, share(1, 1, 1)),
                entry(4000, 7200, 1.0, share(1, 1, 1)),
            ])

    def test_empty_rejected(self):
        with pytest.raises(OptimizationError):
            ShareSchedule([])

    def test_table_renders(self):
        schedule = ShareSchedule([entry(0, 3600, 1.0, share(3, 2, 200))])
        assert "$/h" in schedule.table()
        assert "I=3" in schedule.table()


class TestAnalyzeWindows:
    def _small_flow(self):
        return FlowSpec(
            name="small",
            layers=(
                LayerSpec(LayerKind.INGESTION, "K", "kinesis.shard", "Shards", 1, 16),
                LayerSpec(LayerKind.ANALYTICS, "S", "ec2.m4.large", "VMs", 1, 8),
                LayerSpec(LayerKind.STORAGE, "D", "dynamodb.wcu", "WCU", 1, 1000),
            ),
        )

    def test_solves_each_window(self):
        analyzer = ResourceShareAnalyzer(self._small_flow())
        schedule = analyze_windows(
            analyzer,
            [BudgetWindow(0, 3600, 0.3), BudgetWindow(3600, 7200, 1.2)],
            population_size=40,
            generations=40,
        )
        night = schedule.share_at(0)
        evening = schedule.share_at(3600)
        # Twice the budget buys at least as much of everything picked by
        # the balanced strategy, strictly more of something.
        assert evening.hourly_cost > night.hourly_cost
        assert schedule.span == (0, 7200)

    def test_empty_windows_rejected(self):
        with pytest.raises(OptimizationError):
            analyze_windows(ResourceShareAnalyzer(self._small_flow()), [])

    def test_parallel_windows_identical_to_serial(self):
        analyzer = ResourceShareAnalyzer(self._small_flow())
        windows = [
            BudgetWindow(0, 3600, 0.3),
            BudgetWindow(3600, 7200, 1.2),
            BudgetWindow(7200, 10800, 0.6),
        ]
        kwargs = dict(population_size=24, generations=20, seed=5)
        serial = analyze_windows(analyzer, windows, **kwargs, jobs=1)
        parallel = analyze_windows(analyzer, windows, **kwargs, jobs=2)
        assert serial.table() == parallel.table()
        for a, b in zip(serial.entries, parallel.entries):
            assert a.picked == b.picked
            assert [s.shares for s in a.result.solutions] == [s.shares for s in b.result.solutions]


class TestManagerIntegration:
    def test_scheduled_bounds_switch_at_window_boundary(self):
        schedule = ShareSchedule([
            entry(0, 1800, 0.5, share(2, 2, 300)),
            entry(1800, 7200, 2.0, share(10, 6, 600)),
        ])
        manager = (
            FlowBuilder("scheduled", seed=3)
            .ingestion(shards=2)
            .workload(ConstantRate(3500))  # wants ~6 shards
            .control(LayerKind.INGESTION, style="adaptive")
            .share_schedule(schedule)
            .build()
        )
        result = manager.run(5400)
        shards = result.capacity_trace(LayerKind.INGESTION)
        # First window: capped at 2 despite heavy overload.
        assert shards.slice(0, 1800).maximum() <= 2.0
        # Second window: the cap lifts and the controller scales out.
        assert shards.slice(3000, 5400).maximum() >= 4.0

    def test_schedule_and_static_bounds_conflict(self):
        schedule = ShareSchedule([entry(0, 3600, 1.0, share(2, 2, 300))])
        with pytest.raises(ConfigurationError):
            (
                FlowBuilder()
                .workload(ConstantRate(100))
                .control(LayerKind.INGESTION, style="adaptive")
                .share_bounds({LayerKind.INGESTION: 4})
                .share_schedule(schedule)
                .build()
            )

"""Span execution must be bit-identical to the per-tick reference loop.

Every test here runs the same flow twice — once with span-batched
execution (the default) and once with ``.spans(False)`` forcing the
per-tick loop — and asserts the complete observable state matches
exactly: every raw metric datapoint (compared by ``repr`` so a single
ULP of drift fails), cost-meter accumulators, drop counters, collector
snapshots, and control decisions.

Bus *events* are compared as per-timestamp multisets: the span path may
emit same-timestamp events in a different relative order (e.g. a read
``capacity.applied`` lands before a throttle episode), but the set of
events at each simulated second is identical.

Scenario coverage targets exactly the hazards inside a span: reshard
completions, topology rebalances, EC2 warm-ups, aggregation-window
flushes, and MAX_BACKLOG crossings.
"""

import random

import pytest

from repro.chaos import ChaosSchedule, FaultKind, FaultSpec
from repro.cloud.storm import BoltSpec, TopologyConfig
from repro.core.builder import FlowBuilder
from repro.core.flow import LayerKind
from repro.core.manager import _FlowPipeline
from repro.workload.generators import ConstantRate, SinusoidalRate, StepRate


def _raw_metrics(result):
    """Every stored datapoint of every series, reprs at full precision."""
    out = {}
    for key, series in result.cloudwatch._series.items():
        out[key] = (
            series.times.tolist(),
            [repr(v) for v in series.values.tolist()],
        )
    return out


def _costs(result):
    return [(name, repr(meter.total_cost)) for name, meter in sorted(result.cost_meters.items())]


def _snapshots(result):
    return [
        (snap.time, sorted((k, repr(v)) for k, v in snap.values.items()))
        for snap in result.collector.snapshots
    ]


def _decisions(result):
    out = []
    if result.recorder is None:
        return out
    for d in result.recorder.decisions:
        out.append(repr(d))
    return out


def _event_multiset(result):
    """Events keyed by timestamp, order-insensitive within a second."""
    if result.recorder is None:
        return []
    rows = [
        (e.time, e.layer, e.kind, tuple(sorted((k, repr(v)) for k, v in e.payload.items())))
        for e in result.recorder.bus
    ]
    return sorted(rows)


def assert_equivalent(reference, spanned, events: bool = False):
    assert spanned.dropped_records == reference.dropped_records
    assert spanned.dropped_writes == reference.dropped_writes
    assert _raw_metrics(spanned) == _raw_metrics(reference)
    assert _costs(spanned) == _costs(reference)
    assert _snapshots(spanned) == _snapshots(reference)
    if events:
        assert _event_multiset(spanned) == _event_multiset(reference)
        assert _decisions(spanned) == _decisions(reference)


def run_pair(make_builder, horizon, events: bool = False):
    """Build + run the flow with spans off and on; return both results."""
    results = []
    for spans in (False, True):
        builder = make_builder().spans(spans)
        if events:
            builder = builder.observe()
        results.append(builder.build().run(horizon))
    return results


class TestControlledFlowEquivalence:
    def test_adaptive_control_with_scaling_events(self):
        """Reshards, DDB updates, EC2 warm-ups and flushes inside spans."""

        def build():
            return (
                FlowBuilder("span-eq", seed=11)
                .ingestion(shards=2)
                .analytics(vms=2)
                .storage(write_units=300)
                .workload(SinusoidalRate(mean=1500, amplitude=1100, period=600))
                .control_all(style="adaptive", reference=60.0, period=30)
            )

        reference, spanned = run_pair(build, 1200)
        assert_equivalent(reference, spanned)
        # The scenario must actually scale, or it proves nothing about
        # capacity events landing mid-span.
        for kind in (LayerKind.INGESTION, LayerKind.ANALYTICS, LayerKind.STORAGE):
            cap = spanned.capacity_trace(kind, period=60).values
            assert min(cap) < max(cap), f"{kind} never scaled"

    def test_randomized_seeds_and_periods(self):
        """Property-style sweep: random seeds, periods, shapes."""
        rng = random.Random(0xF10E)
        for _ in range(4):
            seed = rng.randrange(10_000)
            period = rng.choice([20, 30, 60])
            mean = rng.randrange(600, 2200)
            amplitude = rng.randrange(200, mean)

            def build():
                return (
                    FlowBuilder("span-eq-rand", seed=seed)
                    .ingestion(shards=2)
                    .analytics(vms=2)
                    .storage(write_units=250)
                    .workload(SinusoidalRate(mean=mean, amplitude=amplitude, period=420))
                    .control_all(style="adaptive", reference=60.0, period=period)
                )

            reference, spanned = run_pair(build, 900)
            assert_equivalent(reference, spanned)

    def test_topology_rebalance_inside_span(self):
        """VM-count changes trigger rebalance windows; spans must clamp."""
        topology = TopologyConfig(
            bolts=(
                BoltSpec("parse", records_per_executor_per_second=500, executors=4),
                BoltSpec("aggregate", records_per_executor_per_second=250, executors=4),
            ),
            executor_slots_per_vm=4,
            rebalance_seconds=25,
        )

        def build():
            return (
                FlowBuilder("span-eq-topo", seed=3)
                .ingestion(shards=3)
                .analytics(vms=2, topology=topology)
                .storage(write_units=300)
                .workload(StepRate(base=700, level=2400, at=240))
                .control_all(style="adaptive", reference=60.0, period=30)
            )

        reference, spanned = run_pair(build, 900, events=True)
        assert_equivalent(reference, spanned, events=True)
        rebalances = spanned.recorder.bus.of_kind("rebalance")
        assert rebalances, "scenario never rebalanced"

    def test_read_workload_and_read_control(self):
        def build():
            return (
                FlowBuilder("span-eq-reads", seed=21)
                .ingestion(shards=2)
                .analytics(vms=2)
                .storage(write_units=280)
                .workload(SinusoidalRate(mean=1200, amplitude=700, period=500))
                .control_all(style="adaptive", reference=60.0, period=30)
                .reads(
                    StepRate(base=40, level=260, at=300),
                    read_units=100,
                    style="adaptive",
                    reference=60.0,
                    period=30,
                )
            )

        reference, spanned = run_pair(build, 900)
        assert_equivalent(reference, spanned)

    def test_max_backlog_crossing_inside_span(self, monkeypatch):
        """Drop accounting when the backlog clamps mid-span."""
        monkeypatch.setattr(_FlowPipeline, "MAX_BACKLOG", 25_000)

        def build():
            # Static under-provisioned flow: no control boundaries, so
            # the clamp must happen inside long spans.
            return (
                FlowBuilder("span-eq-drop", seed=5)
                .ingestion(shards=1)
                .analytics(vms=1)
                .storage(write_units=40)
                .workload(ConstantRate(4000))
            )

        reference, spanned = run_pair(build, 300)
        assert_equivalent(reference, spanned)
        assert spanned.dropped_records > 0, "backlog never crossed the cap"

    def test_coarse_tick_flow(self):
        def build():
            return (
                FlowBuilder("span-eq-tick", seed=9)
                .ingestion(shards=2)
                .analytics(vms=2)
                .storage(write_units=300)
                .workload(SinusoidalRate(mean=1400, amplitude=800, period=600))
                .control_all(style="adaptive", reference=60.0, period=30)
                .tick(5)
            )

        reference, spanned = run_pair(build, 1500)
        assert_equivalent(reference, spanned)


#: One scenario per fault kind, sized so the fault actually bites.
CHAOS_SCENARIOS = {
    "reshard-stall": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.RESHARD_STALL, start=120, duration=400, intensity=4),
    ), seed=1),
    "shard-brownout": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=200, duration=300, intensity=0.5),
    ), seed=2),
    "worker-crash": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.WORKER_CRASH, start=300, intensity=1),
    ), seed=3),
    "rebalance-fail": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.REBALANCE_FAIL, start=240, duration=90),
    ), seed=4),
    "throttle-storm": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.THROTTLE_STORM, start=180, duration=300, intensity=0.6),
    ), seed=5),
    "update-reject": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.UPDATE_REJECT, start=120, duration=300),
    ), seed=6),
    "metric-delay": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.METRIC_DELAY, start=180, duration=240, intensity=120),
    ), seed=7),
    "metric-dropout": ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.METRIC_DROPOUT, start=180, duration=240),
    ), seed=8),
}


class TestChaosEquivalence:
    """Span-vs-tick bit-equivalence under every chaos fault kind.

    The injector bounds spans at each transition's due tick and clamps
    the tick after a worker crash, so fault effects must land at the
    exact same ticks in both modes — including retry/backoff decisions,
    degraded-sensor events, and the invariant checker's audit."""

    @staticmethod
    def _build(schedule):
        def build():
            return (
                FlowBuilder("span-eq-chaos", seed=11)
                .ingestion(shards=2)
                .analytics(vms=2)
                .storage(write_units=300)
                .workload(SinusoidalRate(mean=1400, amplitude=800, period=600))
                .control_all(style="adaptive", reference=60.0, period=30)
                .chaos(schedule)
            )

        return build

    @pytest.mark.parametrize("kind", sorted(CHAOS_SCENARIOS))
    def test_single_fault_scenarios(self, kind):
        schedule = CHAOS_SCENARIOS[kind]
        reference, spanned = run_pair(self._build(schedule), 900, events=True)
        assert_equivalent(reference, spanned, events=True)
        # The fault actually fired, identically in both modes.
        assert reference.chaos_events
        assert spanned.chaos_events == reference.chaos_events
        assert any(e.fault == kind for e in spanned.chaos_events)
        # The always-on checker audited both runs cleanly.
        assert reference.invariants.ok and spanned.invariants.ok

    def test_combined_multi_layer_scenario(self):
        schedule = ChaosSchedule(faults=(
            FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=150, duration=300, intensity=0.5),
            FaultSpec(kind=FaultKind.RESHARD_STALL, start=500, duration=200, intensity=3),
            FaultSpec(kind=FaultKind.WORKER_CRASH, start=400, intensity=1),
            FaultSpec(kind=FaultKind.REBALANCE_FAIL, start=700, duration=90),
            FaultSpec(kind=FaultKind.THROTTLE_STORM, start=300, duration=240, intensity=0.6),
            FaultSpec(kind=FaultKind.UPDATE_REJECT, start=600, duration=240),
            FaultSpec(kind=FaultKind.METRIC_DELAY, start=100, duration=150, intensity=90),
            FaultSpec(kind=FaultKind.METRIC_DROPOUT, start=850, duration=100),
        ), seed=42)
        reference, spanned = run_pair(self._build(schedule), 1200, events=True)
        assert_equivalent(reference, spanned, events=True)
        assert spanned.chaos_events == reference.chaos_events
        injected = {e.fault for e in spanned.chaos_events if e.phase == "inject"}
        assert injected == {k.value for k in FaultKind}


class TestFleetEquivalence:
    """Span-vs-tick bit-equivalence for a multi-flow region run.

    The multi-flow hazards on top of the single-flow ones: the shared
    EC2 pool's contention factor (a pure function of *all* flows'
    committed instances, hoisted per span), region admission denials
    landing at the exact same control boundaries in both modes, and the
    coordinator's grants being identical — one flow's chaos or scaling
    must perturb its neighbors from exactly the same tick either way.
    """

    @staticmethod
    def _fleet(span_execution, coordinate, chaos=False):
        from repro.chaos import ChaosSchedule as Schedule
        from repro.cloud.region import RegionLimits
        from repro.cloud.storm import StormConfig
        from repro.core.config import LayerControlConfig, default_adaptive_controller
        from repro.core.fleet import FleetFlowSpec, RegionFleetManager

        def controls():
            return {
                kind: LayerControlConfig(
                    controller=default_adaptive_controller(kind), period=30
                )
                for kind in LayerKind
            }

        flows = []
        for i in range(2):
            schedule = None
            if chaos and i == 0:
                schedule = Schedule(
                    faults=(
                        FaultSpec(kind=FaultKind.WORKER_CRASH, start=400, intensity=1),
                        FaultSpec(kind=FaultKind.THROTTLE_STORM, start=600,
                                  duration=200, intensity=0.6),
                    ),
                    seed=13,
                )
            flows.append(
                FleetFlowSpec(
                    name=f"flow{i}",
                    workload=SinusoidalRate(
                        mean=1500 + 500 * i, amplitude=1000, period=900
                    ),
                    controls=controls(),
                    # Overcommitted: both flows believe they may take
                    # nearly the whole account, so one of them hits the
                    # account limit mid-run and is denied.
                    share_bounds={
                        LayerKind.INGESTION: 5,
                        LayerKind.ANALYTICS: 5,
                        LayerKind.STORAGE: 800,
                    },
                    storm=StormConfig(records_per_vm_per_second=700),
                    chaos=schedule,
                )
            )
        return RegionFleetManager(
            flows,
            limits=RegionLimits(
                max_instances=6,
                max_total_shards=7,
                max_total_write_units=1200,
                # A low threshold so the shared pool is contended for
                # most of the run, exercising the span-hoisted factor.
                contention_threshold=0.5,
                contention_slope=0.4,
            ),
            seed=11,
            span_execution=span_execution,
            coordinate_period=300 if coordinate else None,
        )

    def _run_fleet_pair(self, coordinate, chaos=False):
        results = []
        for spans in (False, True):
            fleet = self._fleet(spans, coordinate, chaos)
            results.append((fleet, fleet.run(1200)))
        (ref_fleet, reference), (span_fleet, spanned) = results
        assert not ref_fleet.engine.last_run_used_spans
        assert span_fleet.engine.last_run_used_spans
        return reference, spanned

    @pytest.mark.parametrize("coordinate", [False, True])
    def test_two_flow_region_bit_identical(self, coordinate):
        reference, spanned = self._run_fleet_pair(coordinate)
        assert sorted(reference.flows) == sorted(spanned.flows)
        denied = reference.region.total_denials()
        assert denied > 0, "scenario must actually hit the account limit"
        for flow_id in reference.flows:
            assert_equivalent(reference.flows[flow_id], spanned.flows[flow_id])
            assert reference.flows[flow_id].invariants.ok
            assert spanned.flows[flow_id].invariants.ok
        # Region accounting and denial history identical tick-for-tick.
        assert spanned.region.denial_counts == reference.region.denial_counts
        if coordinate:
            assert spanned.coordinator.records == reference.coordinator.records

    def test_cross_flow_chaos_visibility(self):
        """Flow0's worker crash changes the shared pool, hence flow1's
        contention factor — from exactly the same tick in both modes."""
        reference, spanned = self._run_fleet_pair(coordinate=True, chaos=True)
        assert reference.flows["flow0"].chaos_events
        assert (
            spanned.flows["flow0"].chaos_events
            == reference.flows["flow0"].chaos_events
        )
        for flow_id in reference.flows:
            assert_equivalent(reference.flows[flow_id], spanned.flows[flow_id])

"""Unit tests for the ASCII time-series charts."""

import pytest

from repro.core.errors import MonitoringError
from repro.monitoring import line_chart, stacked_panels, time_series_chart
from repro.workload import Trace


class TestLineChart:
    def test_dimensions(self):
        rows = line_chart([1.0, 2.0, 3.0, 4.0], width=10, height=5)
        assert len(rows) == 5
        assert all(len(row) == 4 for row in rows)

    def test_downsamples_to_width(self):
        rows = line_chart(list(range(200)), width=20, height=5)
        assert all(len(row) == 20 for row in rows)

    def test_monotone_series_marks_diagonal(self):
        rows = line_chart([0.0, 1.0, 2.0, 3.0], width=4, height=4)
        # Highest value in the top row's last column, lowest bottom-left.
        assert rows[0][3] == "█"
        assert rows[3][0] == "█"

    def test_flat_series_marks_bottom(self):
        rows = line_chart([5.0, 5.0, 5.0], width=3, height=3)
        assert rows[-1] == "███"

    def test_fill_below_the_mark(self):
        rows = line_chart([0.0, 2.0], width=2, height=3)
        # The high column has its mark on top and dots beneath.
        assert rows[0][1] == "█"
        assert rows[1][1] == "·"
        assert rows[2][1] == "·"

    def test_validation(self):
        with pytest.raises(MonitoringError):
            line_chart([], width=10, height=5)
        with pytest.raises(MonitoringError):
            line_chart([1.0], width=0, height=5)
        with pytest.raises(MonitoringError):
            line_chart([1.0], width=5, height=1)


class TestTimeSeriesChart:
    def test_frame_contains_extents(self):
        trace = Trace("cpu", [(0, 4.8), (60, 10.0), (120, 30.1)])
        chart = time_series_chart(trace, width=20, height=4, title="CPU", unit="%")
        assert "CPU" in chart
        assert "max 30.1%" in chart
        assert "min 4.8%" in chart
        assert "t = 0s .. 120s" in chart

    def test_empty_trace_rejected(self):
        with pytest.raises(MonitoringError):
            time_series_chart(Trace("empty"))


class TestStackedPanels:
    def test_fig2_layout(self):
        records = Trace("records", [(i * 60, float(i % 7)) for i in range(30)])
        cpu = Trace("cpu", [(i * 60, 5.0 + (i % 7)) for i in range(30)])
        panels = stacked_panels(
            [records, cpu], titles=["Ingestion Layer (Kinesis)", "Analytics Layer (Storm)"]
        )
        assert "Ingestion Layer (Kinesis)" in panels
        assert "Analytics Layer (Storm)" in panels
        assert panels.count("max") == 2

    def test_title_count_validated(self):
        with pytest.raises(MonitoringError):
            stacked_panels([Trace("a", [(0, 1.0)])], titles=["x", "y"])

    def test_empty_rejected(self):
        with pytest.raises(MonitoringError):
            stacked_panels([])

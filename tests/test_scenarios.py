"""The scenario DSL, the curated catalog, and the catalog gate.

Validation must name the offending field; serialisation must be
lossless; the catalog must stay runnable in both variants; and the
matrix runner must be byte-identical at any parallelism — the property
the CI ``catalog-gate`` job's determinism rests on.
"""

import dataclasses
import json

import pytest

from repro.chaos.schedule import ChaosSchedule, FaultKind, FaultSpec
from repro.core.errors import ConfigurationError
from repro.scenarios import (
    CATALOG_NAMES,
    CatalogEntry,
    CatalogMatrix,
    Scenario,
    SLOTargets,
    catalog,
    catalog_scenario,
    run_catalog,
    run_scenario,
)
from repro.scenarios.spec import PatternSpec


def tiny_scenario(**overrides) -> Scenario:
    """A cheap, valid scenario for runner-level tests."""
    defaults = dict(
        name="tiny",
        workload=PatternSpec("constant", {"value": 900.0}),
        duration=900,
        seed=5,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


# ----------------------------------------------------------------------
# Pattern validation: every rejection names the offending field
# ----------------------------------------------------------------------
class TestPatternValidation:
    @pytest.mark.parametrize("kind,params,inner,field", [
        ("nope", {}, (), "workload.kind"),
        ("constant", {}, (), "workload.value"),
        ("constant", {"value": -1.0}, (), "workload.value"),
        ("constant", {"value": float("nan")}, (), "workload.value"),
        ("constant", {"value": "fast"}, (), "workload.value"),
        ("step", {"base": 1.0, "level": 2.0, "at": 10, "until": 5}, (), "workload.until"),
        ("ramp", {"start_rate": 1.0, "end_rate": 2.0, "t0": 50, "t1": 50}, (), "workload.t1"),
        ("sinusoid", {"mean": 1.0, "amplitude": 1.0, "period": 0}, (), "workload.period"),
        ("diurnal", {"mean": 1.0, "amplitude": 1.0, "peak_hour": 25.0}, (),
         "workload.peak_hour"),
        ("flash_crowd", {"peak": 5.0, "at": 0, "rise_seconds": 0}, (),
         "workload.rise_seconds"),
        ("weekly", {"day_factors": [1.0] * 6}, ("child",), "workload.day_factors"),
        ("bursty", {"multiplier": 0.5}, ("child",), "workload.multiplier"),
        ("noisy", {"sigma": -0.1}, ("child",), "workload.sigma"),
        ("trace", {}, (), "workload.csv"),
        ("trace", {"csv": "x.csv", "points": [[0, 1.0]]}, (), "workload.csv"),
        ("trace", {"points": [[0, 1.0], [0, 2.0]]}, (), "workload.points[1].time"),
        ("trace", {"points": [[0, 1.0], [60, "x"]]}, (), "workload.points[1].value"),
        ("constant", {"value": 1.0, "volume": 11}, (), "workload.volume"),
    ])
    def test_invalid_params_name_the_field(self, kind, params, inner, field):
        children = tuple(
            PatternSpec("constant", {"value": 1.0}) for _ in inner
        )
        with pytest.raises(ConfigurationError) as err:
            PatternSpec(kind, params, inner=children)
        assert field in str(err.value)

    @pytest.mark.parametrize("kind,n_children,field", [
        ("sum", 0, "workload.inner"),
        ("weekly", 0, "workload.inner"),
        ("weekly", 2, "workload.inner"),
        ("constant", 1, "workload.inner"),
    ])
    def test_wrong_child_count_names_inner(self, kind, n_children, field):
        params = {"value": 1.0} if kind == "constant" else (
            {"day_factors": [1.0] * 7} if kind == "weekly" else {}
        )
        children = tuple(
            PatternSpec("constant", {"value": 1.0}) for _ in range(n_children)
        )
        with pytest.raises(ConfigurationError) as err:
            PatternSpec(kind, params, inner=children)
        assert field in str(err.value)

    def test_params_are_normalised(self):
        spec = PatternSpec("constant", {"value": 5})
        assert spec.params == {"value": 5.0}
        assert isinstance(spec.params["value"], float)

    def test_missing_trace_file_names_csv(self):
        spec = PatternSpec("trace", {"csv": "no-such-trace.csv"})
        with pytest.raises(ConfigurationError, match="csv.*not found"):
            spec.build(seed=1, horizon=100)

    def test_stochastic_builds_are_path_stable(self):
        """A bursty node's draws depend on its path, not its siblings."""
        child = PatternSpec("constant", {"value": 100.0})
        bursty = PatternSpec("bursty", {"bursts_per_hour": 6.0}, inner=(child,))
        alone = PatternSpec("sum", inner=(bursty,))
        with_sibling = PatternSpec("sum", inner=(bursty, child))
        a = alone.build(seed=7, horizon=7200)
        b = with_sibling.build(seed=7, horizon=7200)
        assert a.patterns[0].burst_starts == b.patterns[0].burst_starts


# ----------------------------------------------------------------------
# Scenario validation
# ----------------------------------------------------------------------
class TestScenarioValidation:
    @pytest.mark.parametrize("overrides,field", [
        (dict(name=""), "scenario.name"),
        (dict(name="two words"), "scenario.name"),
        (dict(duration=0), "scenario.duration"),
        (dict(controller="pid"), "scenario.controller"),
        (dict(reference=0.0), "scenario.reference"),
        (dict(reference=120.0), "scenario.reference"),
        (dict(control_period=901), "scenario.control_period"),
        (dict(shards=0), "scenario.capacity.shards"),
        (dict(vms=0), "scenario.capacity.vms"),
        (dict(write_units=0), "scenario.capacity.write_units"),
        (dict(budget_usd_per_hour=0.0), "scenario.budget_usd_per_hour"),
        (dict(key_skew=-1.0), "scenario.key_skew"),
        (dict(exact="yes"), "scenario.exact"),
    ])
    def test_invalid_fields_are_named(self, overrides, field):
        with pytest.raises(ConfigurationError) as err:
            tiny_scenario(**overrides)
        assert field in str(err.value)

    def test_slo_band_bounds_are_named(self):
        with pytest.raises(ConfigurationError, match="slo.utilization_band"):
            SLOTargets(utilization_band=101.0)
        with pytest.raises(ConfigurationError, match="slo.max_violation_pct"):
            SLOTargets(max_violation_pct=-1.0)

    def test_fault_past_duration_is_rejected(self):
        chaos = ChaosSchedule(faults=(
            FaultSpec(FaultKind.THROTTLE_STORM, start=1000, duration=60, intensity=0.5),
        ))
        with pytest.raises(ConfigurationError, match="chaos.*never fire"):
            tiny_scenario(chaos=chaos)

    def test_unknown_top_level_field_is_named(self):
        data = tiny_scenario().to_dict()
        data["pudget"] = 3.0
        with pytest.raises(ConfigurationError, match="scenario.pudget"):
            Scenario.from_dict(data)

    def test_unknown_capacity_field_is_named(self):
        data = tiny_scenario().to_dict()
        data["capacity"]["gpus"] = 1
        with pytest.raises(ConfigurationError, match="scenario.capacity.gpus"):
            Scenario.from_dict(data)

    def test_missing_required_fields_are_named(self):
        with pytest.raises(ConfigurationError, match="scenario.workload"):
            Scenario.from_dict({"name": "x", "duration": 100})
        with pytest.raises(ConfigurationError, match="scenario.duration"):
            Scenario.from_dict(
                {"name": "x", "workload": {"kind": "constant", "value": 1.0}}
            )

    def test_invalid_json_is_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            Scenario.from_json("{nope")


# ----------------------------------------------------------------------
# Serialisation round-trips (fixed cases; hypothesis covers random ones)
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("name", CATALOG_NAMES)
    @pytest.mark.parametrize("variant", ["smoke", "full"])
    def test_every_catalog_scenario_round_trips(self, name, variant):
        scenario = catalog_scenario(name, variant)
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_chaos_and_slo_survive(self):
        scenario = tiny_scenario(
            chaos=ChaosSchedule(faults=(
                FaultSpec(FaultKind.WORKER_CRASH, start=450, intensity=1.0),
            ), seed=5),
            slo=SLOTargets(utilization_band=70.0, max_violation_pct=5.0),
            budget_usd_per_hour=1.25,
            exact=False,
        )
        clone = Scenario.from_dict(json.loads(scenario.to_json()))
        assert clone == scenario
        assert clone.chaos == scenario.chaos
        assert clone.slo == scenario.slo


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_at_least_eight_scenarios(self):
        assert len(CATALOG_NAMES) >= 8
        assert len(set(CATALOG_NAMES)) == len(CATALOG_NAMES)

    @pytest.mark.parametrize("variant", ["smoke", "full"])
    def test_every_scenario_is_valid_and_compiles(self, variant):
        scenarios = catalog(variant)
        assert tuple(scenarios) == CATALOG_NAMES
        for scenario in scenarios.values():
            manager = scenario.build_manager()
            assert manager is not None

    def test_full_variant_is_longer(self):
        smoke, full = catalog("smoke"), catalog("full")
        for name in CATALOG_NAMES:
            assert full[name].duration > smoke[name].duration

    def test_catalog_covers_fault_and_controller_diversity(self):
        scenarios = catalog("smoke").values()
        styles = {s.controller for s in scenarios}
        assert len(styles) >= 3
        fault_kinds = {
            spec.kind for s in scenarios if s.chaos for spec in s.chaos.faults
        }
        assert len(fault_kinds) >= 6
        assert any(s.workload.kind == "trace" for s in scenarios)
        assert any(s.key_skew > 1.0 for s in scenarios)

    def test_unknown_variant_and_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown catalog variant"):
            catalog("huge")
        with pytest.raises(ConfigurationError, match="unknown catalog scenario"):
            catalog_scenario("nope")


# ----------------------------------------------------------------------
# The runner and the matrix gate
# ----------------------------------------------------------------------
class TestRunCatalog:
    @pytest.fixture(scope="class")
    def pair(self):
        return {
            "tiny-a": tiny_scenario(name="tiny-a"),
            "tiny-b": tiny_scenario(
                name="tiny-b",
                seed=9,
                budget_usd_per_hour=2.0,
                chaos=ChaosSchedule(faults=(
                    FaultSpec(FaultKind.THROTTLE_STORM, start=300,
                              duration=120, intensity=0.6),
                ), seed=9),
            ),
        }

    @pytest.fixture(scope="class")
    def matrix(self, pair):
        return run_catalog(pair, variant="smoke", jobs=1)

    def test_jobs_do_not_change_a_byte(self, pair, matrix):
        parallel = run_catalog(pair, variant="smoke", jobs=2)
        assert parallel.to_json() == matrix.to_json()

    def test_rerun_is_byte_identical(self, pair, matrix):
        assert run_catalog(pair, jobs=1).to_json() == matrix.to_json()

    def test_wall_clock_fields_are_zeroed(self, matrix):
        for entry in matrix.entries.values():
            assert entry.card.wall_seconds == 0.0
            assert entry.card.ticks_per_second == 0.0

    def test_budget_verdicts(self, matrix):
        assert matrix.entries["tiny-a"].within_budget is None
        assert matrix.entries["tiny-b"].within_budget is not None

    def test_matrix_round_trip(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(matrix.to_json())
        clone = CatalogMatrix.from_json_file(path)
        assert clone == matrix
        assert clone.compare(matrix) == []

    def test_card_drift_is_prefixed_with_scenario_name(self, matrix):
        entries = dict(matrix.entries)
        entries["tiny-a"] = dataclasses.replace(
            entries["tiny-a"],
            card=dataclasses.replace(
                entries["tiny-a"].card,
                total_cost=entries["tiny-a"].card.total_cost * 2,
            ),
        )
        drifted = dataclasses.replace(matrix, entries=entries)
        messages = drifted.compare(matrix)
        assert any(m.startswith("tiny-a.total_cost:") for m in messages)

    def test_verdict_drift_is_named(self, matrix):
        entries = dict(matrix.entries)
        entries["tiny-b"] = dataclasses.replace(entries["tiny-b"], slo_ok=False)
        drifted = dataclasses.replace(matrix, entries=entries)
        assert any(
            m.startswith("tiny-b.slo_ok:") for m in drifted.compare(matrix)
        )

    def test_missing_scenario_is_drift(self, matrix):
        entries = dict(matrix.entries)
        entries.pop("tiny-b")
        drifted = dataclasses.replace(matrix, entries=entries)
        assert any("scenarios.tiny-b" in m for m in drifted.compare(matrix))

    def test_variant_mismatch_is_drift(self, matrix):
        drifted = dataclasses.replace(matrix, variant="full")
        assert any(m.startswith("variant:") for m in drifted.compare(matrix))

    def test_non_matrix_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not a scenario-catalog"):
            CatalogMatrix.from_dict({"kind": "fleet"})

    def test_run_scenario_slo_band_feeds_the_card(self, pair):
        tight = dataclasses.replace(
            pair["tiny-a"], slo=SLOTargets(utilization_band=1.0)
        )
        loose = pair["tiny-a"]
        assert max(
            run_scenario(tight).slo_violation_pct.values()
        ) >= max(run_scenario(loose).slo_violation_pct.values())


class TestCommittedBaseline:
    def test_baseline_loads_and_covers_the_catalog(self):
        matrix = CatalogMatrix.from_json_file("results/SCORECARD_catalog.json")
        assert matrix.variant == "smoke"
        assert matrix.exact is True
        assert tuple(sorted(matrix.entries)) == tuple(sorted(CATALOG_NAMES))
        for entry in matrix.entries.values():
            assert entry.card.wall_seconds == 0.0
            assert entry.card.invariants_ok

    def test_entry_shape(self):
        matrix = CatalogMatrix.from_json_file("results/SCORECARD_catalog.json")
        entry = matrix.entries["flash-crowd-throttle-storm"]
        assert isinstance(entry, CatalogEntry)
        assert entry.card.mttr_by_fault  # the throttle storm is scored
        assert entry.within_budget is True
